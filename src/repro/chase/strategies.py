"""Pluggable chase scheduling: rescan, incremental, sharded, streaming.

The engine's round loop is strategy-agnostic: at the top of each round it
asks its :class:`ChaseStrategy` for the triggers to consider, applies them
one at a time (re-validating each, exactly as before), and feeds every
resulting :class:`~repro.chase.steps.StepDelta` back to the strategy.  The
implementations answer "which triggers?" very differently:

* :class:`RescanStrategy` re-enumerates *all* homomorphisms of *all*
  dependency bodies against the *whole* tableau every round --
  O(deps x |tableau|^arity) per round.  It is kept as the reference oracle
  (pin it via ``ChaseBudget(chase_strategy="rescan")`` when debugging).
* :class:`IncrementalStrategy` seeds a trigger worklist from the initial
  tableau once, then maintains it from step deltas: a new row (td step) or
  the rewritten rows of a merge (egd step) are the only places a *new*
  homomorphism can appear, so only partial matches through those rows are
  extended.  A round then costs work proportional to what changed.
* :class:`ShardedStrategy` partitions the per-dependency worklist of the
  incremental strategy across ``shard_count`` workers and runs each shard's
  trigger extension in parallel, merging the per-shard results at the round
  barrier the engine already provides.  The whole round's delta list ships
  to the workers in one message at the barrier.
* :class:`StreamingStrategy` keeps the sharded partition but changes the
  *framing* of the worker feed: each applied step's delta streams to every
  shard the moment the engine reports it, so workers replay the delta and
  extend partial matches concurrently with the engine applying the tail of
  the round.  The round barrier then only drains results that are already
  (mostly) computed -- the last serial section of the sharded round
  becomes a pipeline.

All strategies feed the same fair round loop and produce identical chase
results; see ``tests/chase/test_differential.py`` for the property test and
:mod:`repro.chase.engine` for why the per-round trigger *sets* coincide.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.chase.kernel import TriggerKernel, resolve_kernel
from repro.chase.steps import (
    ChaseState,
    CompiledDependency,
    StepDelta,
    TdDelta,
    Trigger,
    find_triggers,
    violates,
)
from repro.config import DEFAULT_SHARD_COUNT
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.valuations import Valuation, homomorphisms
from repro.model.values import Value
from repro.util.errors import ReproError


class StrategyError(ReproError):
    """An unknown or misconfigured chase scheduling strategy."""


class ChaseStrategy(Protocol):
    """The scheduling seam of the chase engine.

    A strategy is (re)initialised per run via :meth:`start`, asked for one
    round's trigger candidates via :meth:`next_round` (an empty answer means
    the chase terminated), and told about every applied step via
    :meth:`observe`.  Candidates may be stale -- the engine re-validates each
    against the live tableau before applying it -- but a strategy must never
    *omit* a trigger that is active at the start of a round, or the chase
    would stop being a complete semi-decision procedure.
    """

    name: str

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        """Bind the run's mutable state and reset internal bookkeeping."""
        ...

    def next_round(self) -> List[Trigger]:
        """Trigger candidates for the next round (empty = no active triggers)."""
        ...

    def observe(self, delta: StepDelta) -> None:
        """Account for one applied step's delta."""
        ...


class RescanStrategy:
    """Fair-round scheduling by full re-enumeration (the pre-refactor engine).

    Every round enumerates every homomorphism of every dependency body into
    the whole tableau.  Simple, obviously complete, and the oracle the
    incremental strategy is differentially tested against.
    """

    name = "rescan"
    #: The oracle never accelerates: it exists to re-derive every trigger
    #: from first principles, so the columnar kernel does not apply.
    kernel = "off"

    def __init__(self) -> None:
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._state = state
        self._compiled = tuple(compiled)

    def next_round(self) -> List[Trigger]:
        triggers: List[Trigger] = []
        for compiled in self._compiled:
            triggers.extend(find_triggers(self._state, compiled))
        return triggers

    def observe(self, delta: StepDelta) -> None:  # full rescan needs no deltas
        return None


class IncrementalStrategy:
    """Delta-driven scheduling: a trigger worklist plus a partial-match index.

    The worklist is seeded once from the initial tableau (that seeding *is*
    the one unavoidable full scan).  Afterwards, each applied step reports a
    :class:`~repro.chase.steps.StepDelta` and only the partial matches
    through the delta's changed rows are extended to full homomorphisms:
    for every (body row -> changed row) binding that is consistent, the
    remaining body rows are matched against the tableau with that binding as
    the seed.  Every new homomorphism must route at least one body row
    through a changed row -- rows never disappear and satisfied dependencies
    stay satisfied as the tableau only grows/merges -- so nothing is missed.

    The extension search runs against the *persistently maintained*
    (attribute, value) -> rows buckets of the state-owned
    :class:`~repro.chase.row_index.RowIndex` -- the same index the egd step
    answers its value -> rows merge lookups from.  The steps themselves keep
    it in sync (td deltas insert their one new row, egd deltas evict the
    pre-rewrite rows and insert the rewritten images), so by the time
    :meth:`observe` runs the buckets already describe the post-step tableau.
    This sharing is what makes a delta cost proportional to the rows it
    touches -- rebuilding an index per probe (or keeping a second private
    copy in lockstep) would smuggle the full tableau scan back in.

    Triggers discovered mid-round are queued for the *next* round, which is
    exactly the fairness discipline of the rescan engine: every trigger found
    in round ``r`` is handled before any trigger first found in round
    ``r + 1``.

    ``kernel`` opts the matching itself onto the columnar kernel
    (:mod:`repro.chase.kernel`): seeding and per-delta extension then run
    as batched posting-list / vectorized passes over an incrementally
    maintained column mirror instead of dict-probing ``homomorphisms``
    calls.  Any :data:`~repro.chase.kernel.KERNEL_MODES` value is accepted;
    the trigger sets (and therefore the chase results) are byte-identical
    either way.
    """

    name = "incremental"

    def __init__(self, kernel: Optional[str] = None) -> None:
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()
        self._positions: Dict[object, int] = {}
        self._queue: List[Trigger] = []
        self._seen: Set[Tuple[int, Valuation]] = set()
        self._kernel_mode = kernel
        self._kernel: Optional[TriggerKernel] = None
        #: The backend resolved for the current run: "numpy", "bitset", "off".
        self.kernel: str = "off"

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._state = state
        self._compiled = tuple(compiled)
        self._positions = {
            cd.dependency: position for position, cd in enumerate(self._compiled)
        }
        self._queue = []
        self._seen = set()
        backend = resolve_kernel(self._kernel_mode)
        self.kernel = backend or "off"
        if backend is not None:
            # The kernel owns its own columnar mirror (seeded here, advanced
            # per delta in observe), so the state's row index is left unbuilt
            # until something else -- an egd step's merge lookup -- needs it.
            self._kernel = TriggerKernel(state.relation, backend)
            for cd in self._compiled:
                self._kernel.find_triggers(
                    cd, lambda alpha, cd=cd: self._enqueue(cd, alpha)
                )
            return
        self._kernel = None
        # Share the state-owned index: building it here (first access) is the
        # one unavoidable full scan; afterwards the *steps* keep it in sync
        # and the property re-checks identity, so stale buckets are impossible.
        index = state.row_index
        for cd in self._compiled:
            for trigger in find_triggers(state, cd, index=index.attr_buckets):
                self._enqueue(cd, trigger.valuation)

    def next_round(self) -> List[Trigger]:
        batch, self._queue = self._queue, []
        return batch

    def observe(self, delta: StepDelta) -> None:
        if delta.is_noop:
            return
        # The step already applied the delta to the shared row index (via
        # ChaseState.advance), so every changed row is indexed before any
        # extension runs -- homomorphisms routing two body rows through two
        # changed rows (or twice through one) are visible to the search.
        # The kernel's column mirror follows the same discipline, one
        # apply_delta ahead of the extensions it serves.
        if self._kernel is not None:
            self._kernel.apply_delta(delta)
        relation = self._state.relation
        for row in delta.changed_rows:
            if row not in relation:
                continue
            for cd in self._compiled:
                self._extend_through(cd, row, relation)

    # -- internals -------------------------------------------------------------

    def _extend_through(
        self, cd: CompiledDependency, row: Row, relation: Relation
    ) -> None:
        """Extend every (body row -> ``row``) partial match to full triggers."""
        if self._kernel is not None:
            self._kernel.extend_through(
                cd, row, lambda alpha, cd=cd: self._enqueue(cd, alpha)
            )
            return
        extend_through(
            cd,
            row,
            relation,
            self._state.row_index.attr_buckets,
            lambda alpha, cd=cd: self._enqueue(cd, alpha),
        )

    def _enqueue(self, cd: CompiledDependency, alpha: Valuation) -> None:
        key = (self._positions[cd.dependency], alpha)
        if key in self._seen:
            return
        self._seen.add(key)
        self._queue.append(Trigger(cd.dependency, alpha))


def extend_through(
    cd: CompiledDependency,
    row: Row,
    relation: Relation,
    index: Dict,
    emit: Callable[[Valuation], None],
) -> None:
    """Extend every (body row -> ``row``) partial match to active triggers.

    The core of delta-driven scheduling, shared by the incremental strategy
    and every shard of the sharded strategy: for each consistent binding of
    one body row onto the changed ``row``, the remaining body rows are
    matched against ``relation`` (through the prebuilt ``index`` buckets)
    and every completion that still violates the dependency is handed to
    ``emit``.
    """
    if not cd.is_td and cd.trivial:
        return
    for position, body_row in enumerate(cd.body_rows):
        seed = _row_binding(body_row, row)
        if seed is None:
            continue
        for alpha in homomorphisms(
            cd.body_rest[position], relation, seed=seed, index=index
        ):
            if violates(cd, alpha, relation):
                emit(alpha)


def _row_binding(body_row: Row, target_row: Row) -> Optional[Valuation]:
    """The valuation mapping ``body_row`` onto ``target_row``, if consistent."""
    binding: Dict[Value, Value] = {}
    for attr, value in body_row.items():
        image = target_row[attr]
        if value.tag != image.tag:
            return None
        previous = binding.get(value)
        if previous is not None and previous != image:
            return None
        binding[value] = image
    return Valuation(binding)


# ---------------------------------------------------------------------------
# Sharded scheduling
# ---------------------------------------------------------------------------

#: Initial-tableau size below which ``executor="auto"`` prefers threads: a
#: worker process costs a fork plus per-round pipe round-trips, which only
#: pays off once each round's extension work dwarfs that overhead.
PROCESS_POOL_THRESHOLD = 256


def value_components(relation: Relation) -> Dict[Value, Value]:
    """Connected components of the tableau's value graph.

    Two values are connected when they co-occur in some row; the returned
    mapping sends every value of the relation to its component's canonical
    representative (the lexicographically least member), so the result is
    deterministic regardless of row iteration order.  The sharded strategy
    uses these components to co-locate egds whose merge cascades can
    interact -- a merge only ever equates values of one component, and the
    rows it rewrites all lie in that component.
    """
    parent: Dict[Value, Value] = {}

    def find(value: Value) -> Value:
        root = value
        while parent[root] != root:
            root = parent[root]
        while parent[value] != root:
            parent[value], value = root, parent[value]
        return root

    for row in relation.sorted_rows():
        values = list(row.values())
        for value in values:
            parent.setdefault(value, value)
        anchor = find(values[0])
        for value in values[1:]:
            root = find(value)
            if root != anchor:
                parent[root] = anchor
    members: Dict[Value, List[Value]] = {}
    for value in parent:
        members.setdefault(find(value), []).append(value)
    canon: Dict[Value, Value] = {}
    for component in members.values():
        representative = min(component, key=lambda v: (v.name, v.tag or ""))
        for value in component:
            canon[value] = representative
    return canon


def _egd_fingerprint(
    cd: CompiledDependency, canon: Dict[Value, Value]
) -> Tuple[Tuple[str, str], ...]:
    """The value-graph components an egd's merges can possibly touch.

    A typed egd only ever merges values of its sides' shared domain, so the
    components hosting values of that tag bound where its cascades can run;
    an untyped egd may reach every component.  Egds with equal fingerprints
    are routed to the same shard.
    """
    tag = cd.left.tag if cd.left is not None else None
    representatives = {
        rep
        for value, rep in canon.items()
        if tag is None or value.tag == tag
    }
    return tuple(sorted((rep.name, rep.tag or "") for rep in representatives))


def partition_dependencies(
    compiled: Sequence[CompiledDependency],
    shard_count: int,
    relation: Relation,
) -> Tuple[Tuple[int, ...], ...]:
    """Deterministically assign dependency positions to ``shard_count`` shards.

    Dependencies are the unit of partitioning (a trigger belongs to exactly
    one dependency, hence to exactly one shard, so no cross-shard dedup is
    needed).  Egds are routed first, grouped by their
    :func:`_egd_fingerprint` over the initial tableau's value graph so that
    egds whose merge cascades can interact share a shard -- one cascade's
    extension work then stays on one worker instead of fanning out across
    all of them.  Tds balance the remainder onto the least-loaded shards.
    Empty shards are possible (more shards than dependencies) and are
    skipped by the strategy.
    """
    positions = list(range(len(compiled)))
    if shard_count <= 1 or len(positions) <= 1:
        return (tuple(positions),) if positions else ()
    # The value graph is only consulted to route egds; a td-only dependency
    # set (common for the big tableaux sharding targets) skips the scan.
    canon: Optional[Dict[Value, Value]] = None
    egd_groups: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
    tds: List[int] = []
    for position, cd in enumerate(compiled):
        if cd.is_td:
            tds.append(position)
        else:
            if canon is None:
                canon = value_components(relation)
            egd_groups.setdefault(_egd_fingerprint(cd, canon), []).append(position)
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for fingerprint in sorted(egd_groups):
        shard = zlib.crc32(repr(fingerprint).encode("utf-8")) % shard_count
        shards[shard].extend(egd_groups[fingerprint])
    for position in tds:
        target = min(range(shard_count), key=lambda s: (len(shards[s]), s))
        shards[target].append(position)
    return tuple(tuple(sorted(shard)) for shard in shards)


def replay_delta(state: ChaseState, delta: StepDelta) -> None:
    """Replay one applied step's delta onto a mirror :class:`ChaseState`.

    The post-step tableau is fully determined by the delta (a td delta adds
    its one row, an egd delta swaps the pre-rewrite rows for their images),
    so a shard can reconstruct the engine's state without seeing the steps
    themselves.  Routing the update through :meth:`ChaseState.advance` keeps
    the mirror's :class:`~repro.chase.row_index.RowIndex` sub-index in sync
    via the same ``apply_delta`` path the live engine state uses -- which is
    exactly what makes the merged shard state byte-identical to a
    sequential run.
    """
    if delta.is_noop:
        return
    if isinstance(delta, TdDelta):
        state.advance(state.relation.with_rows([delta.row]), delta)
    else:
        state.advance(
            state.relation.substitute_rows(delta.removed_rows, delta.changed_rows),
            delta,
        )


class _ShardCore:
    """One shard's incremental worklist over a subset of the dependencies.

    ``owns_state=True`` (process mode): the core holds a private mirror
    :class:`ChaseState` -- a relation copy plus the shard's own
    :class:`~repro.chase.row_index.RowIndex` sub-index -- reconciled at
    every round barrier by replaying the round's deltas through
    :func:`replay_delta`.  ``owns_state=False`` (thread mode): the core
    reads the live engine-owned state, whose index the applied steps
    already keep in sync, so no replay is needed.

    ``kernel`` (a resolved backend name, or ``None`` for the classic
    matcher) gives the core a *private* :class:`~repro.chase.kernel.
    TriggerKernel` mirror: each core advances its own column arrays from
    the delta stream it is fed, so two cores never double-apply a delta to
    shared kernel state.
    """

    def __init__(
        self,
        members: Iterable[Tuple[int, CompiledDependency]],
        state: ChaseState,
        owns_state: bool,
        kernel: Optional[str] = None,
    ) -> None:
        self._members = tuple(members)
        self._state = state
        self._owns_state = owns_state
        self._seen: Set[Tuple[int, Valuation]] = set()
        self._kernel = (
            TriggerKernel(state.relation, kernel) if kernel is not None else None
        )

    def seed(self) -> List[Tuple[int, Valuation]]:
        """Initial triggers of this shard's dependencies (one full scan)."""
        out: List[Tuple[int, Valuation]] = []
        kernel = self._kernel
        if kernel is not None:
            for position, cd in self._members:
                kernel.find_triggers(
                    cd, lambda alpha, p=position: self._emit(p, alpha, out)
                )
            return out
        index = self._state.row_index.attr_buckets
        for position, cd in self._members:
            for trigger in find_triggers(self._state, cd, index=index):
                self._emit(position, trigger.valuation, out)
        return out

    def barrier(self, deltas: Sequence[StepDelta]) -> List[Tuple[int, Valuation]]:
        """Merge one round's deltas, then extend matches through changed rows."""
        state = self._state
        if self._owns_state:
            for delta in deltas:
                replay_delta(state, delta)
        kernel = self._kernel
        if kernel is not None:
            # The whole round lands on the mirror before any extension runs,
            # matching the classic path (whose row index is already post-round
            # here) -- only the *final* relation hosts witnesses.
            for delta in deltas:
                kernel.apply_delta(delta)
        relation = state.relation
        index = None if kernel is not None else state.row_index.attr_buckets
        out: List[Tuple[int, Valuation]] = []
        visited: Set[Row] = set()
        for delta in deltas:
            for row in delta.changed_rows:
                # Rows rewritten away by a later merge in the same round are
                # skipped: every new homomorphism also routes through the
                # post-rewrite images, which are some later delta's rows.
                if row in visited or row not in relation:
                    continue
                visited.add(row)
                for position, cd in self._members:
                    if kernel is not None:
                        kernel.extend_through(
                            cd,
                            row,
                            lambda alpha, p=position: self._emit(p, alpha, out),
                        )
                    else:
                        extend_through(
                            cd,
                            row,
                            relation,
                            index,
                            lambda alpha, p=position: self._emit(p, alpha, out),
                        )
        return out

    def _emit(
        self, position: int, alpha: Valuation, out: List[Tuple[int, Valuation]]
    ) -> None:
        key = (position, alpha)
        if key in self._seen:
            return
        self._seen.add(key)
        out.append((position, alpha))


def _shard_worker_main(
    conn,
    relation: Relation,
    members: Tuple[Tuple[int, CompiledDependency], ...],
    kernel: Optional[str] = None,
) -> None:
    """Entry point of one shard worker process.

    Seeds immediately (so all workers scan the initial tableau in
    parallel), then serves round barriers until the parent sends ``None``.
    Replies are ``("ok", payload)`` or ``("error", text)`` so a worker
    failure surfaces as a :class:`StrategyError` in the parent instead of a
    hung pipe.  ``kernel`` ships the parent's *resolved* backend name, so
    every worker runs the same matcher the parent decided on.
    """
    mirror = ChaseState(relation=relation, fresh=None)
    core = _ShardCore(members, mirror, owns_state=True, kernel=kernel)
    try:
        try:
            conn.send(("ok", core.seed()))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            conn.send(("error", f"shard seeding failed: {exc!r}"))
            return
        while True:
            message = conn.recv()
            if message is None:
                return
            try:
                conn.send(("ok", core.barrier(message)))
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                conn.send(("error", f"shard barrier failed: {exc!r}"))
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


def _stop_worker(process, conn) -> None:
    """Shut one worker down (normal path and the weakref safety net)."""
    try:
        conn.send(None)
    except (OSError, ValueError, BrokenPipeError):
        pass
    try:
        conn.close()
    except OSError:
        pass
    process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - only on a wedged worker
        process.terminate()
        process.join(timeout=2.0)


class _ProcessShard:
    """Parent-side handle of one worker process (request/reply over a pipe).

    Subclasses swap :attr:`worker_main` (the child entry point) and the
    request framing; the pipe lifecycle, reply handling, and the weakref
    reaping safety net are shared.
    """

    worker_main = staticmethod(_shard_worker_main)

    def __init__(self, ctx, relation, members, kernel: Optional[str] = None) -> None:
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=type(self).worker_main,
            args=(child, relation, members, kernel),
            daemon=True,
        )
        self._process.start()
        child.close()
        # Safety net: reap the worker even if close() is never reached.
        self._finalizer = weakref.finalize(
            self, _stop_worker, self._process, self._conn
        )

    def seed_async(self) -> None:
        """No-op: the worker seeds on startup, before its first reply."""

    def request(self, deltas: Sequence[StepDelta]) -> None:
        self._send(list(deltas))

    def collect(self) -> List[Tuple[int, Valuation]]:
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise StrategyError(f"a shard worker process died: {exc!r}") from exc
        if status != "ok":
            raise StrategyError(payload)
        return payload

    def close(self) -> None:
        self._finalizer()

    def _send(self, message) -> None:
        """Send one message, normalizing a dead worker like ``collect`` does."""
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise StrategyError(f"a shard worker process died: {exc!r}") from exc


class _ThreadShard:
    """Parent-side handle of one thread-mode shard (shares the live state)."""

    def __init__(self, core: _ShardCore, pool: ThreadPoolExecutor) -> None:
        self._core = core
        self._pool = pool
        self._future = None

    def seed_async(self) -> None:
        self._future = self._pool.submit(self._core.seed)

    def request(self, deltas: Sequence[StepDelta]) -> None:
        self._future = self._pool.submit(self._core.barrier, deltas)

    def collect(self) -> List[Tuple[int, Valuation]]:
        try:
            return self._future.result()
        except StrategyError:
            raise
        except Exception as exc:  # noqa: BLE001 - normalized like process mode
            raise StrategyError(f"a shard worker failed: {exc!r}") from exc

    def close(self) -> None:  # the pool is owned (and shut down) by the strategy
        self._future = None


def _mp_context():
    """The preferred multiprocessing context (fork when the platform has it)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardedStrategy:
    """Partitioned incremental scheduling: N workers, merged at round barriers.

    The per-dependency trigger worklist of :class:`IncrementalStrategy` is
    partitioned across ``shard_count`` shards by
    :func:`partition_dependencies` (egds grouped by the value-graph
    components their merges can touch, tds balancing the remainder).  Each
    round the engine applies triggers sequentially -- preserving the exact
    step order, fresh-value names, and merge choices of a sequential run --
    while the *discovery* of the next round's triggers fans out: at the
    round barrier every shard replays the round's
    :class:`~repro.chase.steps.TdDelta` / :class:`~repro.chase.steps.EgdDelta`
    stream into its own state (process mode) or reads the live one (thread
    mode) and extends partial matches through the changed rows for its
    dependency subset.  The shard results are merged into one candidate
    list that the engine canonicalizes, dedupes, and orders exactly as for
    the sequential strategies, which is what keeps every run byte-identical
    to ``"incremental"`` and ``"rescan"``.

    Parameters
    ----------
    shard_count:
        How many shards to partition the worklist across.
    executor:
        ``"process"`` runs every shard in a persistent worker process
        (parallel trigger enumeration; per-round pipe traffic is one delta
        stream per shard).  ``"thread"`` runs shards on a thread pool
        sharing the engine's state (no replay cost; enumeration is
        GIL-serialized, so this is the small-tableau fallback).  ``"auto"``
        (default) picks processes once the initial tableau reaches
        ``process_threshold`` rows on a multi-CPU machine, threads
        otherwise, and falls back to threads when worker processes cannot
        be spawned.
    process_threshold:
        The ``"auto"`` cut-over point, in initial-tableau rows.
    kernel:
        Columnar-kernel mode for every shard's matcher (any
        :data:`~repro.chase.kernel.KERNEL_MODES` value); the parent
        resolves it once and ships the concrete backend to the workers.
    """

    name = "sharded"

    def __init__(
        self,
        shard_count: int = DEFAULT_SHARD_COUNT,
        executor: str = "auto",
        process_threshold: int = PROCESS_POOL_THRESHOLD,
        kernel: Optional[str] = None,
    ) -> None:
        if shard_count < 1:
            raise StrategyError("a sharded strategy needs shard_count >= 1")
        if executor not in ("auto", "thread", "process"):
            raise StrategyError(
                f"unknown shard executor {executor!r}; "
                "expected auto, thread, or process"
            )
        self._shard_count = shard_count
        self._executor_choice = executor
        self._process_threshold = process_threshold
        self._kernel_mode = kernel
        self._kernel_backend: Optional[str] = None
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()
        self._shards: List[Union[_ProcessShard, _ThreadShard]] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pending: List[StepDelta] = []
        self._queue: Optional[List[Trigger]] = None
        #: The executor resolved for the current run (set by :meth:`start`).
        self.executor: Optional[str] = None
        #: The kernel backend resolved for the current run ("off" = classic).
        self.kernel: str = "off"

    @property
    def shard_count(self) -> int:
        """The configured worker count."""
        return self._shard_count

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self.close()
        self._state = state
        self._compiled = tuple(compiled)
        self._pending = []
        self._kernel_backend = resolve_kernel(self._kernel_mode)
        self.kernel = self._kernel_backend or "off"
        parts = [
            members
            for members in partition_dependencies(
                self._compiled, self._shard_count, state.relation
            )
            if members
        ]
        if not parts:
            self._queue = []
            return
        self.executor = self._resolve_executor(state)
        if self.executor == "process":
            try:
                self._spawn_process_shards(state, parts)
            except OSError as exc:
                if self._executor_choice == "process":
                    # The caller pinned processes explicitly; degrading to
                    # GIL-serialized threads would silently change what they
                    # asked to measure or isolate.
                    self.close()
                    raise StrategyError(
                        f"cannot spawn shard worker processes: {exc!r}"
                    ) from exc
                # "auto" in an environment without worker processes
                # (sandboxes, fd limits): degrade to the threaded fallback,
                # same results.
                self.close()
                self.executor = "thread"
        if self.executor == "thread":
            self._spawn_thread_shards(state, parts)
        triggers: List[Trigger] = []
        for shard in self._shards:
            triggers.extend(self._to_triggers(shard.collect()))
        self._queue = triggers

    def next_round(self) -> List[Trigger]:
        if self._queue is not None:
            batch, self._queue = self._queue, None
            return batch
        deltas, self._pending = self._pending, []
        if not deltas or not self._shards:
            return []
        for shard in self._shards:
            shard.request(deltas)
        triggers: List[Trigger] = []
        for shard in self._shards:
            triggers.extend(self._to_triggers(shard.collect()))
        return triggers

    def observe(self, delta: StepDelta) -> None:
        if delta.is_noop:
            return
        self._pending.append(delta)

    def close(self) -> None:
        """Tear down worker processes / the thread pool of the current run.

        Runs on every exit path (the engine calls it in a ``finally``, so a
        shard worker raising mid-round -- or a ``KeyboardInterrupt`` in the
        parent -- still reaps the executors).  Each shard's shutdown is
        isolated: one failing handle can never keep the remaining workers
        or the thread pool alive.
        """
        shards, self._shards = self._shards, []
        for shard in shards:
            try:
                shard.close()
            except Exception:  # noqa: BLE001 - best-effort: keep reaping
                # close() runs in finally blocks: raising here would mask
                # the in-flight exception, and _stop_worker already
                # escalates to terminate() on a wedged worker.
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._queue = None

    # -- internals -------------------------------------------------------------

    def _resolve_executor(self, state: ChaseState) -> str:
        if self._executor_choice != "auto":
            return self._executor_choice
        # Worker processes only pay off with real parallelism and a tableau
        # big enough that per-round extension work dwarfs the pipe traffic.
        if (
            len(state.relation) >= self._process_threshold
            and (os.cpu_count() or 1) > 1
        ):
            return "process"
        return "thread"

    def _spawn_process_shards(
        self, state: ChaseState, parts: Sequence[Tuple[int, ...]]
    ) -> None:
        ctx = _mp_context()
        for members in parts:
            self._shards.append(
                _ProcessShard(
                    ctx,
                    state.relation,
                    tuple((p, self._compiled[p]) for p in members),
                    kernel=self._kernel_backend,
                )
            )

    def _spawn_thread_shards(
        self, state: ChaseState, parts: Sequence[Tuple[int, ...]]
    ) -> None:
        if self._kernel_backend is None:
            state.row_index  # materialise once, before worker threads share it
        self._pool = ThreadPoolExecutor(
            max_workers=len(parts), thread_name_prefix="chase-shard"
        )
        for members in parts:
            core = _ShardCore(
                tuple((p, self._compiled[p]) for p in members),
                state,
                owns_state=False,
                kernel=self._kernel_backend,
            )
            self._shards.append(_ThreadShard(core, self._pool))
        for shard in self._shards:
            shard.seed_async()

    def _to_triggers(
        self, pairs: Iterable[Tuple[int, Valuation]]
    ) -> List[Trigger]:
        compiled = self._compiled
        return [
            Trigger(compiled[position].dependency, alpha)
            for position, alpha in pairs
        ]


# ---------------------------------------------------------------------------
# Streaming scheduling
# ---------------------------------------------------------------------------


class _StreamCore(_ShardCore):
    """One streaming shard's state: a sequenced delta feed, applied eagerly.

    Extends :class:`_ShardCore` (whose seeding, mirror/live-state modes,
    and emission dedup are reused unchanged) with the incremental framing
    of the worker protocol: deltas arrive one at a time, each tagged with
    its position in the round's step order, and :meth:`barrier` takes the
    expected count instead of the sharded protocol's whole delta list.  A
    reorder buffer replays arrivals strictly in sequence -- transports
    that preserve ordering pay nothing, transports that do not still
    converge to the sequential result -- and every replayed delta
    immediately extends partial matches through its changed rows.

    ``owns_state=True`` (process mode): extension for delta ``i`` runs
    against the mirror tableau *as of step i* -- concurrently with the
    engine applying step ``i+1``.  Triggers found this way may be stale by
    the time the round ends (a later merge can rewrite the rows they
    route through), which is fine: the engine canonicalizes and
    re-validates every candidate, and a mid-round discovery canonicalizes
    to exactly the trigger a barrier-time discovery would have produced.
    Completeness holds because every end-of-round homomorphism routes
    through the changed rows of the *last* delta that touched its rows, at
    which point all its other rows are already in the mirror relation.

    ``owns_state=False`` (thread mode): the core reads the live
    engine-owned state, whose relation and row index the applied steps
    already keep in sync, so no replay runs -- the transport then delivers
    the whole (still sequence-checked) feed at the barrier, when the
    engine is parked in ``collect`` and the shared state is quiescent.
    """

    def __init__(
        self,
        members: Iterable[Tuple[int, CompiledDependency]],
        state: ChaseState,
        owns_state: bool = True,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__(members, state, owns_state, kernel)
        self._next_seq = 0
        self._reorder: Dict[int, StepDelta] = {}
        self._visited: Set[Row] = set()
        self._out: List[Tuple[int, Valuation]] = []

    def feed(self, seq: int, delta: StepDelta) -> None:
        """Accept one step's delta; replay every contiguous prefix eagerly."""
        if seq < self._next_seq or seq in self._reorder:
            raise StrategyError(
                f"duplicate delta #{seq} in the streaming feed "
                f"(next expected: #{self._next_seq})"
            )
        self._reorder[seq] = delta
        while self._next_seq in self._reorder:
            self._apply(self._reorder.pop(self._next_seq))
            self._next_seq += 1

    def barrier(self, expected: int) -> List[Tuple[int, Valuation]]:
        """Join the round: all ``expected`` deltas must have been replayed."""
        if self._next_seq != expected or self._reorder:
            missing = sorted(
                set(range(expected)) - set(self._reorder) - set(range(self._next_seq))
            )
            raise StrategyError(
                f"streaming feed incomplete at the barrier: expected "
                f"{expected} deltas, replayed {self._next_seq}, "
                f"missing {missing}"
            )
        self._next_seq = 0
        self._visited.clear()
        out, self._out = self._out, []
        return out

    def _apply(self, delta: StepDelta) -> None:
        state = self._state
        if self._owns_state:
            replay_delta(state, delta)
        kernel = self._kernel
        if kernel is not None:
            # One delta at a time: the mirror tracks the as-of-step-i
            # tableau the streaming overlap is defined against.
            kernel.apply_delta(delta)
        relation = state.relation
        index = None if kernel is not None else state.row_index.attr_buckets
        for row in delta.changed_rows:
            # Same skip discipline as _ShardCore.barrier: a row already
            # extended this round cannot host a *new* homomorphism without
            # some later delta's rows (which get their own extension), and
            # a row rewritten away routes every new match through its
            # post-rewrite images instead.
            if row in self._visited or row not in relation:
                continue
            self._visited.add(row)
            for position, cd in self._members:
                if kernel is not None:
                    kernel.extend_through(
                        cd,
                        row,
                        lambda alpha, p=position: self._emit(p, alpha, self._out),
                    )
                else:
                    extend_through(
                        cd,
                        row,
                        relation,
                        index,
                        lambda alpha, p=position: self._emit(p, alpha, self._out),
                    )


def _stream_worker_main(
    conn,
    relation: Relation,
    members: Tuple[Tuple[int, CompiledDependency], ...],
    kernel: Optional[str] = None,
) -> None:
    """Entry point of one streaming shard worker process.

    Seeds immediately, then consumes the incremental feed: ``("delta",
    (seq, delta))`` messages are replayed as they arrive (this is where the
    overlap with the engine's round tail happens), ``("barrier", expected)``
    answers with the accumulated triggers, ``None`` shuts the worker down.
    A feed failure is remembered and reported at the next barrier, so the
    request/reply framing never desynchronizes even when a delta poisons
    the shard mid-round.
    """
    mirror = ChaseState(relation=relation, fresh=None)
    core = _StreamCore(members, mirror, kernel=kernel)
    try:
        try:
            conn.send(("ok", core.seed()))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            conn.send(("error", f"stream seeding failed: {exc!r}"))
            return
        failure: Optional[str] = None
        while True:
            message = conn.recv()
            if message is None:
                return
            kind, payload = message
            if kind == "delta":
                if failure is None:
                    try:
                        core.feed(*payload)
                    except Exception as exc:  # noqa: BLE001 - deferred
                        failure = f"stream feed failed: {exc!r}"
            else:  # barrier
                if failure is not None:
                    conn.send(("error", failure))
                    return
                try:
                    conn.send(("ok", core.barrier(payload)))
                except Exception as exc:  # noqa: BLE001 - forwarded
                    conn.send(("error", f"stream barrier failed: {exc!r}"))
                    return
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


class _StreamProcessShard(_ProcessShard):
    """Parent-side handle of one streaming worker process.

    The pipe lifecycle, reply handling, and reaping safety net come from
    :class:`_ProcessShard`; only the child entry point and the message
    framing (tagged per-delta feed + barrier marker) differ.
    """

    worker_main = staticmethod(_stream_worker_main)

    def feed(self, seq: int, delta: StepDelta) -> None:
        self._send(("delta", (seq, delta)))

    def request(self, expected: int) -> None:
        self._send(("barrier", expected))


class _StreamThreadShard(_ThreadShard):
    """Parent-side handle of one thread-mode streaming shard.

    With the GIL there is no parallelism to overlap the feed with, and the
    live engine state mutates *while* the round runs, so eager replay would
    either race on the shared row index or pay a redundant per-shard mirror.
    The thread transport therefore queues the sequenced feed locally and
    delivers it whole when the barrier is requested: the drain runs on the
    pool while the engine parks in ``collect`` (the shared state is
    quiescent), the sequence numbers are still validated, and the cost
    profile matches the sharded strategy's thread mode.  Real feed overlap
    is the process transport's job.  Seeding and result collection (with
    its :class:`StrategyError` normalization) come from :class:`_ThreadShard`.
    """

    def __init__(self, core: _StreamCore, pool: ThreadPoolExecutor) -> None:
        super().__init__(core, pool)
        self._pending: List[Tuple[int, StepDelta]] = []

    def feed(self, seq: int, delta: StepDelta) -> None:
        self._pending.append((seq, delta))

    def request(self, expected: int) -> None:
        pending, self._pending = self._pending, []
        self._future = self._pool.submit(self._drain, pending, expected)

    def _drain(
        self, pending: Sequence[Tuple[int, StepDelta]], expected: int
    ) -> List[Tuple[int, Valuation]]:
        for seq, delta in pending:
            self._core.feed(seq, delta)
        return self._core.barrier(expected)

    def close(self) -> None:
        self._pending = []
        super().close()


class StreamingStrategy(ShardedStrategy):
    """Sharded scheduling with an incremental per-step delta feed.

    The dependency partition, executor resolution (``"auto"`` /
    ``"thread"`` / ``"process"``), worker lifecycle, and the engine-side
    merge point are all inherited from :class:`ShardedStrategy`; what
    changes is the worker protocol's framing.  The sharded strategy batches
    a round's deltas and ships them in one message at the barrier, leaving
    every shard idle while the engine applies the round.  This strategy
    streams each :class:`~repro.chase.steps.StepDelta` to every shard the
    moment :meth:`observe` reports it, so shards replay the delta onto
    their mirror state and extend partial matches through its changed rows
    *while* the engine is still applying the tail of the round;
    :meth:`next_round` then only sends the barrier marker and drains
    results that are already largely computed.

    Deltas are sequence-numbered per round and workers replay them through
    a reorder buffer, so the protocol tolerates out-of-order arrival and
    fails loudly (at the barrier) on a lost or duplicated message instead
    of silently diverging.  Results remain byte-identical to every other
    strategy: mid-round discoveries canonicalize to exactly the triggers a
    barrier-time discovery would produce, and the engine's round-boundary
    canonicalize/dedupe/sort erases the difference in discovery time.

    The overlap needs real parallelism, so it is the *process* transport's
    behaviour; the thread transport (the small-tableau / single-CPU
    fallback) queues the sequenced feed locally and drains it when the
    barrier is requested, sharing the live state exactly like the sharded
    strategy's thread mode -- same answers, same cost profile, no mirror
    replay taxed onto a GIL-serialized pipeline.
    """

    name = "streaming"

    def __init__(
        self,
        shard_count: int = DEFAULT_SHARD_COUNT,
        executor: str = "auto",
        process_threshold: int = PROCESS_POOL_THRESHOLD,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__(
            shard_count=shard_count,
            executor=executor,
            process_threshold=process_threshold,
            kernel=kernel,
        )
        self._streamed = 0

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._streamed = 0
        super().start(state, compiled)

    def observe(self, delta: StepDelta) -> None:
        if delta.is_noop:
            return
        seq = self._streamed
        self._streamed += 1
        for shard in self._shards:
            shard.feed(seq, delta)

    def next_round(self) -> List[Trigger]:
        if self._queue is not None:
            batch, self._queue = self._queue, None
            return batch
        expected, self._streamed = self._streamed, 0
        if not expected or not self._shards:
            return []
        for shard in self._shards:
            shard.request(expected)
        triggers: List[Trigger] = []
        for shard in self._shards:
            triggers.extend(self._to_triggers(shard.collect()))
        return triggers

    # -- internals -------------------------------------------------------------

    def _spawn_process_shards(
        self, state: ChaseState, parts: Sequence[Tuple[int, ...]]
    ) -> None:
        ctx = _mp_context()
        for members in parts:
            self._shards.append(
                _StreamProcessShard(
                    ctx,
                    state.relation,
                    tuple((p, self._compiled[p]) for p in members),
                    kernel=self._kernel_backend,
                )
            )

    def _spawn_thread_shards(
        self, state: ChaseState, parts: Sequence[Tuple[int, ...]]
    ) -> None:
        if self._kernel_backend is None:
            state.row_index  # materialise once, before worker threads share it
        self._pool = ThreadPoolExecutor(
            max_workers=len(parts), thread_name_prefix="chase-stream"
        )
        for members in parts:
            core = _StreamCore(
                tuple((p, self._compiled[p]) for p in members),
                state,
                owns_state=False,
                kernel=self._kernel_backend,
            )
            self._shards.append(_StreamThreadShard(core, self._pool))
        for shard in self._shards:
            shard.seed_async()


#: The concrete strategies by configuration name (``"auto"`` -> incremental).
STRATEGY_REGISTRY = {
    "rescan": RescanStrategy,
    "incremental": IncrementalStrategy,
    "sharded": ShardedStrategy,
    "streaming": StreamingStrategy,
    "auto": IncrementalStrategy,
}


def make_strategy(
    choice: Union[str, ChaseStrategy, None],
    *,
    shard_count: Optional[int] = None,
    kernel: Optional[str] = None,
) -> ChaseStrategy:
    """Resolve a strategy name (or pass through a ready-made instance).

    ``None`` and ``"auto"`` resolve to :class:`IncrementalStrategy`.
    ``shard_count`` configures the ``"sharded"`` / ``"streaming"``
    strategies' worker count and ``kernel`` the columnar trigger-matching
    kernel of every delta-driven strategy (the engine forwards
    ``ChaseBudget.shard_count`` / ``ChaseBudget.chase_kernel`` here);
    either is ignored by strategies it does not apply to.  A strategy
    *instance* is returned as-is -- :meth:`ChaseStrategy.start` resets all
    per-run bookkeeping, so one instance can serve many runs.
    """
    if choice is None:
        choice = "auto"
    if isinstance(choice, str):
        factory = STRATEGY_REGISTRY.get(choice)
        if factory is None:
            raise StrategyError(
                f"unknown chase strategy {choice!r}; "
                f"expected one of {', '.join(sorted(STRATEGY_REGISTRY))}"
            )
        if factory in (ShardedStrategy, StreamingStrategy):
            return factory(
                shard_count=(
                    DEFAULT_SHARD_COUNT if shard_count is None else shard_count
                ),
                kernel=kernel,
            )
        if factory is IncrementalStrategy:
            return factory(kernel=kernel)
        return factory()
    if hasattr(choice, "start") and hasattr(choice, "next_round"):
        return choice
    raise StrategyError(
        f"a chase strategy must be a name or a ChaseStrategy instance, "
        f"got {choice!r}"
    )
