"""Pluggable chase scheduling: rescan (reference oracle) vs. incremental.

The engine's round loop is strategy-agnostic: at the top of each round it
asks its :class:`ChaseStrategy` for the triggers to consider, applies them
one at a time (re-validating each, exactly as before), and feeds every
resulting :class:`~repro.chase.steps.StepDelta` back to the strategy.  The
two implementations answer "which triggers?" very differently:

* :class:`RescanStrategy` re-enumerates *all* homomorphisms of *all*
  dependency bodies against the *whole* tableau every round --
  O(deps x |tableau|^arity) per round.  It is kept as the reference oracle
  (pin it via ``ChaseBudget(chase_strategy="rescan")`` when debugging).
* :class:`IncrementalStrategy` seeds a trigger worklist from the initial
  tableau once, then maintains it from step deltas: a new row (td step) or
  the rewritten rows of a merge (egd step) are the only places a *new*
  homomorphism can appear, so only partial matches through those rows are
  extended.  A round then costs work proportional to what changed.

Both strategies feed the same fair round loop and produce identical chase
results; see ``tests/chase/test_differential.py`` for the property test and
:mod:`repro.chase.engine` for why the per-round trigger *sets* coincide.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple, Union

from repro.chase.steps import (
    ChaseState,
    CompiledDependency,
    StepDelta,
    Trigger,
    find_triggers,
    violates,
)
from repro.model.attributes import Attribute
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.valuations import Valuation, build_row_index, homomorphisms
from repro.model.values import Value
from repro.util.errors import ReproError


class StrategyError(ReproError):
    """An unknown or misconfigured chase scheduling strategy."""


class ChaseStrategy(Protocol):
    """The scheduling seam of the chase engine.

    A strategy is (re)initialised per run via :meth:`start`, asked for one
    round's trigger candidates via :meth:`next_round` (an empty answer means
    the chase terminated), and told about every applied step via
    :meth:`observe`.  Candidates may be stale -- the engine re-validates each
    against the live tableau before applying it -- but a strategy must never
    *omit* a trigger that is active at the start of a round, or the chase
    would stop being a complete semi-decision procedure.
    """

    name: str

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        """Bind the run's mutable state and reset internal bookkeeping."""
        ...

    def next_round(self) -> List[Trigger]:
        """Trigger candidates for the next round (empty = no active triggers)."""
        ...

    def observe(self, delta: StepDelta) -> None:
        """Account for one applied step's delta."""
        ...


class RescanStrategy:
    """Fair-round scheduling by full re-enumeration (the pre-refactor engine).

    Every round enumerates every homomorphism of every dependency body into
    the whole tableau.  Simple, obviously complete, and the oracle the
    incremental strategy is differentially tested against.
    """

    name = "rescan"

    def __init__(self) -> None:
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._state = state
        self._compiled = tuple(compiled)

    def next_round(self) -> List[Trigger]:
        triggers: List[Trigger] = []
        for compiled in self._compiled:
            triggers.extend(find_triggers(self._state, compiled))
        return triggers

    def observe(self, delta: StepDelta) -> None:  # full rescan needs no deltas
        return None


class IncrementalStrategy:
    """Delta-driven scheduling: a trigger worklist plus a partial-match index.

    The worklist is seeded once from the initial tableau (that seeding *is*
    the one unavoidable full scan).  Afterwards, each applied step reports a
    :class:`~repro.chase.steps.StepDelta` and only the partial matches
    through the delta's changed rows are extended to full homomorphisms:
    for every (body row -> changed row) binding that is consistent, the
    remaining body rows are matched against the tableau with that binding as
    the seed.  Every new homomorphism must route at least one body row
    through a changed row -- rows never disappear and satisfied dependencies
    stay satisfied as the tableau only grows/merges -- so nothing is missed.

    The extension search runs against a *persistently maintained*
    (attribute, value) -> rows index (see
    :func:`repro.model.valuations.build_row_index`): td deltas insert their
    one new row, egd deltas evict the pre-rewrite rows and insert the
    rewritten images.  This is what makes a delta cost proportional to the
    rows it touches -- rebuilding the index per probe would smuggle the full
    tableau scan back in.

    Triggers discovered mid-round are queued for the *next* round, which is
    exactly the fairness discipline of the rescan engine: every trigger found
    in round ``r`` is handled before any trigger first found in round
    ``r + 1``.
    """

    name = "incremental"

    def __init__(self) -> None:
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()
        self._positions: Dict[object, int] = {}
        self._queue: List[Trigger] = []
        self._seen: Set[Tuple[int, Valuation]] = set()
        self._row_index: Dict[Tuple[Attribute, Value], Dict[Row, None]] = {}
        self._attributes: Tuple[Attribute, ...] = ()

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._state = state
        self._compiled = tuple(compiled)
        self._positions = {
            cd.dependency: position for position, cd in enumerate(self._compiled)
        }
        self._queue = []
        self._seen = set()
        self._attributes = state.relation.universe.attributes
        self._row_index = build_row_index(state.relation)
        for cd in self._compiled:
            for trigger in find_triggers(state, cd):
                self._enqueue(cd, trigger.valuation)

    def next_round(self) -> List[Trigger]:
        batch, self._queue = self._queue, []
        return batch

    def observe(self, delta: StepDelta) -> None:
        if delta.is_noop:
            return
        relation = self._state.relation
        removed = getattr(delta, "removed_rows", ())
        for row in removed:
            self._unindex_row(row)
        # Index every changed row *before* extending through any of them, so
        # homomorphisms routing two body rows through two changed rows (or
        # twice through one) are visible to the extension search.
        live = [row for row in delta.changed_rows if row in relation]
        for row in live:
            self._index_row(row)
        for row in live:
            for cd in self._compiled:
                self._extend_through(cd, row, relation)

    # -- internals -------------------------------------------------------------

    def _index_row(self, row: Row) -> None:
        for attr in self._attributes:
            self._row_index.setdefault((attr, row[attr]), {})[row] = None

    def _unindex_row(self, row: Row) -> None:
        for attr in self._attributes:
            bucket = self._row_index.get((attr, row[attr]))
            if bucket is not None:
                bucket.pop(row, None)

    def _extend_through(
        self, cd: CompiledDependency, row: Row, relation: Relation
    ) -> None:
        """Extend every (body row -> ``row``) partial match to full triggers."""
        if not cd.is_td and cd.trivial:
            return
        for position, body_row in enumerate(cd.body_rows):
            seed = _row_binding(body_row, row)
            if seed is None:
                continue
            for alpha in homomorphisms(
                cd.body_rest[position], relation, seed=seed, index=self._row_index
            ):
                if violates(cd, alpha, relation):
                    self._enqueue(cd, alpha)

    def _enqueue(self, cd: CompiledDependency, alpha: Valuation) -> None:
        key = (self._positions[cd.dependency], alpha)
        if key in self._seen:
            return
        self._seen.add(key)
        self._queue.append(Trigger(cd.dependency, alpha))


def _row_binding(body_row: Row, target_row: Row) -> Optional[Valuation]:
    """The valuation mapping ``body_row`` onto ``target_row``, if consistent."""
    binding: Dict[Value, Value] = {}
    for attr, value in body_row.items():
        image = target_row[attr]
        if value.tag != image.tag:
            return None
        previous = binding.get(value)
        if previous is not None and previous != image:
            return None
        binding[value] = image
    return Valuation(binding)


#: The concrete strategies by configuration name (``"auto"`` -> incremental).
STRATEGY_REGISTRY = {
    "rescan": RescanStrategy,
    "incremental": IncrementalStrategy,
    "auto": IncrementalStrategy,
}


def make_strategy(choice: Union[str, ChaseStrategy, None]) -> ChaseStrategy:
    """Resolve a strategy name (or pass through a ready-made instance).

    ``None`` and ``"auto"`` resolve to :class:`IncrementalStrategy`.  A
    strategy *instance* is returned as-is -- :meth:`ChaseStrategy.start`
    resets all per-run bookkeeping, so one instance can serve many runs.
    """
    if choice is None:
        choice = "auto"
    if isinstance(choice, str):
        factory = STRATEGY_REGISTRY.get(choice)
        if factory is None:
            raise StrategyError(
                f"unknown chase strategy {choice!r}; "
                f"expected one of {', '.join(sorted(STRATEGY_REGISTRY))}"
            )
        return factory()
    if hasattr(choice, "start") and hasattr(choice, "next_round"):
        return choice
    raise StrategyError(
        f"a chase strategy must be a name or a ChaseStrategy instance, "
        f"got {choice!r}"
    )
