"""Pluggable chase scheduling: rescan oracle, incremental worklist, sharded.

The engine's round loop is strategy-agnostic: at the top of each round it
asks its :class:`ChaseStrategy` for the triggers to consider, applies them
one at a time (re-validating each, exactly as before), and feeds every
resulting :class:`~repro.chase.steps.StepDelta` back to the strategy.  The
implementations answer "which triggers?" very differently:

* :class:`RescanStrategy` re-enumerates *all* homomorphisms of *all*
  dependency bodies against the *whole* tableau every round --
  O(deps x |tableau|^arity) per round.  It is kept as the reference oracle
  (pin it via ``ChaseBudget(chase_strategy="rescan")`` when debugging).
* :class:`IncrementalStrategy` seeds a trigger worklist from the initial
  tableau once, then maintains it from step deltas: a new row (td step) or
  the rewritten rows of a merge (egd step) are the only places a *new*
  homomorphism can appear, so only partial matches through those rows are
  extended.  A round then costs work proportional to what changed.
* :class:`ShardedStrategy` partitions the per-dependency worklist of the
  incremental strategy across ``shard_count`` workers and runs each shard's
  trigger extension in parallel, merging the per-shard results at the round
  barrier the engine already provides.

All strategies feed the same fair round loop and produce identical chase
results; see ``tests/chase/test_differential.py`` for the property test and
:mod:`repro.chase.engine` for why the per-round trigger *sets* coincide.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.chase.steps import (
    ChaseState,
    CompiledDependency,
    StepDelta,
    TdDelta,
    Trigger,
    find_triggers,
    violates,
)
from repro.config import DEFAULT_SHARD_COUNT
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.valuations import Valuation, homomorphisms
from repro.model.values import Value
from repro.util.errors import ReproError


class StrategyError(ReproError):
    """An unknown or misconfigured chase scheduling strategy."""


class ChaseStrategy(Protocol):
    """The scheduling seam of the chase engine.

    A strategy is (re)initialised per run via :meth:`start`, asked for one
    round's trigger candidates via :meth:`next_round` (an empty answer means
    the chase terminated), and told about every applied step via
    :meth:`observe`.  Candidates may be stale -- the engine re-validates each
    against the live tableau before applying it -- but a strategy must never
    *omit* a trigger that is active at the start of a round, or the chase
    would stop being a complete semi-decision procedure.
    """

    name: str

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        """Bind the run's mutable state and reset internal bookkeeping."""
        ...

    def next_round(self) -> List[Trigger]:
        """Trigger candidates for the next round (empty = no active triggers)."""
        ...

    def observe(self, delta: StepDelta) -> None:
        """Account for one applied step's delta."""
        ...


class RescanStrategy:
    """Fair-round scheduling by full re-enumeration (the pre-refactor engine).

    Every round enumerates every homomorphism of every dependency body into
    the whole tableau.  Simple, obviously complete, and the oracle the
    incremental strategy is differentially tested against.
    """

    name = "rescan"

    def __init__(self) -> None:
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._state = state
        self._compiled = tuple(compiled)

    def next_round(self) -> List[Trigger]:
        triggers: List[Trigger] = []
        for compiled in self._compiled:
            triggers.extend(find_triggers(self._state, compiled))
        return triggers

    def observe(self, delta: StepDelta) -> None:  # full rescan needs no deltas
        return None


class IncrementalStrategy:
    """Delta-driven scheduling: a trigger worklist plus a partial-match index.

    The worklist is seeded once from the initial tableau (that seeding *is*
    the one unavoidable full scan).  Afterwards, each applied step reports a
    :class:`~repro.chase.steps.StepDelta` and only the partial matches
    through the delta's changed rows are extended to full homomorphisms:
    for every (body row -> changed row) binding that is consistent, the
    remaining body rows are matched against the tableau with that binding as
    the seed.  Every new homomorphism must route at least one body row
    through a changed row -- rows never disappear and satisfied dependencies
    stay satisfied as the tableau only grows/merges -- so nothing is missed.

    The extension search runs against the *persistently maintained*
    (attribute, value) -> rows buckets of the state-owned
    :class:`~repro.chase.row_index.RowIndex` -- the same index the egd step
    answers its value -> rows merge lookups from.  The steps themselves keep
    it in sync (td deltas insert their one new row, egd deltas evict the
    pre-rewrite rows and insert the rewritten images), so by the time
    :meth:`observe` runs the buckets already describe the post-step tableau.
    This sharing is what makes a delta cost proportional to the rows it
    touches -- rebuilding an index per probe (or keeping a second private
    copy in lockstep) would smuggle the full tableau scan back in.

    Triggers discovered mid-round are queued for the *next* round, which is
    exactly the fairness discipline of the rescan engine: every trigger found
    in round ``r`` is handled before any trigger first found in round
    ``r + 1``.
    """

    name = "incremental"

    def __init__(self) -> None:
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()
        self._positions: Dict[object, int] = {}
        self._queue: List[Trigger] = []
        self._seen: Set[Tuple[int, Valuation]] = set()

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self._state = state
        self._compiled = tuple(compiled)
        self._positions = {
            cd.dependency: position for position, cd in enumerate(self._compiled)
        }
        self._queue = []
        self._seen = set()
        # Share the state-owned index: building it here (first access) is the
        # one unavoidable full scan; afterwards the *steps* keep it in sync
        # and the property re-checks identity, so stale buckets are impossible.
        index = state.row_index
        for cd in self._compiled:
            for trigger in find_triggers(state, cd, index=index.attr_buckets):
                self._enqueue(cd, trigger.valuation)

    def next_round(self) -> List[Trigger]:
        batch, self._queue = self._queue, []
        return batch

    def observe(self, delta: StepDelta) -> None:
        if delta.is_noop:
            return
        # The step already applied the delta to the shared row index (via
        # ChaseState.advance), so every changed row is indexed before any
        # extension runs -- homomorphisms routing two body rows through two
        # changed rows (or twice through one) are visible to the search.
        relation = self._state.relation
        for row in delta.changed_rows:
            if row not in relation:
                continue
            for cd in self._compiled:
                self._extend_through(cd, row, relation)

    # -- internals -------------------------------------------------------------

    def _extend_through(
        self, cd: CompiledDependency, row: Row, relation: Relation
    ) -> None:
        """Extend every (body row -> ``row``) partial match to full triggers."""
        extend_through(
            cd,
            row,
            relation,
            self._state.row_index.attr_buckets,
            lambda alpha, cd=cd: self._enqueue(cd, alpha),
        )

    def _enqueue(self, cd: CompiledDependency, alpha: Valuation) -> None:
        key = (self._positions[cd.dependency], alpha)
        if key in self._seen:
            return
        self._seen.add(key)
        self._queue.append(Trigger(cd.dependency, alpha))


def extend_through(
    cd: CompiledDependency,
    row: Row,
    relation: Relation,
    index: Dict,
    emit: Callable[[Valuation], None],
) -> None:
    """Extend every (body row -> ``row``) partial match to active triggers.

    The core of delta-driven scheduling, shared by the incremental strategy
    and every shard of the sharded strategy: for each consistent binding of
    one body row onto the changed ``row``, the remaining body rows are
    matched against ``relation`` (through the prebuilt ``index`` buckets)
    and every completion that still violates the dependency is handed to
    ``emit``.
    """
    if not cd.is_td and cd.trivial:
        return
    for position, body_row in enumerate(cd.body_rows):
        seed = _row_binding(body_row, row)
        if seed is None:
            continue
        for alpha in homomorphisms(
            cd.body_rest[position], relation, seed=seed, index=index
        ):
            if violates(cd, alpha, relation):
                emit(alpha)


def _row_binding(body_row: Row, target_row: Row) -> Optional[Valuation]:
    """The valuation mapping ``body_row`` onto ``target_row``, if consistent."""
    binding: Dict[Value, Value] = {}
    for attr, value in body_row.items():
        image = target_row[attr]
        if value.tag != image.tag:
            return None
        previous = binding.get(value)
        if previous is not None and previous != image:
            return None
        binding[value] = image
    return Valuation(binding)


# ---------------------------------------------------------------------------
# Sharded scheduling
# ---------------------------------------------------------------------------

#: Initial-tableau size below which ``executor="auto"`` prefers threads: a
#: worker process costs a fork plus per-round pipe round-trips, which only
#: pays off once each round's extension work dwarfs that overhead.
PROCESS_POOL_THRESHOLD = 256


def value_components(relation: Relation) -> Dict[Value, Value]:
    """Connected components of the tableau's value graph.

    Two values are connected when they co-occur in some row; the returned
    mapping sends every value of the relation to its component's canonical
    representative (the lexicographically least member), so the result is
    deterministic regardless of row iteration order.  The sharded strategy
    uses these components to co-locate egds whose merge cascades can
    interact -- a merge only ever equates values of one component, and the
    rows it rewrites all lie in that component.
    """
    parent: Dict[Value, Value] = {}

    def find(value: Value) -> Value:
        root = value
        while parent[root] != root:
            root = parent[root]
        while parent[value] != root:
            parent[value], value = root, parent[value]
        return root

    for row in relation.sorted_rows():
        values = list(row.values())
        for value in values:
            parent.setdefault(value, value)
        anchor = find(values[0])
        for value in values[1:]:
            root = find(value)
            if root != anchor:
                parent[root] = anchor
    members: Dict[Value, List[Value]] = {}
    for value in parent:
        members.setdefault(find(value), []).append(value)
    canon: Dict[Value, Value] = {}
    for component in members.values():
        representative = min(component, key=lambda v: (v.name, v.tag or ""))
        for value in component:
            canon[value] = representative
    return canon


def _egd_fingerprint(
    cd: CompiledDependency, canon: Dict[Value, Value]
) -> Tuple[Tuple[str, str], ...]:
    """The value-graph components an egd's merges can possibly touch.

    A typed egd only ever merges values of its sides' shared domain, so the
    components hosting values of that tag bound where its cascades can run;
    an untyped egd may reach every component.  Egds with equal fingerprints
    are routed to the same shard.
    """
    tag = cd.left.tag if cd.left is not None else None
    representatives = {
        rep
        for value, rep in canon.items()
        if tag is None or value.tag == tag
    }
    return tuple(sorted((rep.name, rep.tag or "") for rep in representatives))


def partition_dependencies(
    compiled: Sequence[CompiledDependency],
    shard_count: int,
    relation: Relation,
) -> Tuple[Tuple[int, ...], ...]:
    """Deterministically assign dependency positions to ``shard_count`` shards.

    Dependencies are the unit of partitioning (a trigger belongs to exactly
    one dependency, hence to exactly one shard, so no cross-shard dedup is
    needed).  Egds are routed first, grouped by their
    :func:`_egd_fingerprint` over the initial tableau's value graph so that
    egds whose merge cascades can interact share a shard -- one cascade's
    extension work then stays on one worker instead of fanning out across
    all of them.  Tds balance the remainder onto the least-loaded shards.
    Empty shards are possible (more shards than dependencies) and are
    skipped by the strategy.
    """
    positions = list(range(len(compiled)))
    if shard_count <= 1 or len(positions) <= 1:
        return (tuple(positions),) if positions else ()
    # The value graph is only consulted to route egds; a td-only dependency
    # set (common for the big tableaux sharding targets) skips the scan.
    canon: Optional[Dict[Value, Value]] = None
    egd_groups: Dict[Tuple[Tuple[str, str], ...], List[int]] = {}
    tds: List[int] = []
    for position, cd in enumerate(compiled):
        if cd.is_td:
            tds.append(position)
        else:
            if canon is None:
                canon = value_components(relation)
            egd_groups.setdefault(_egd_fingerprint(cd, canon), []).append(position)
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for fingerprint in sorted(egd_groups):
        shard = zlib.crc32(repr(fingerprint).encode("utf-8")) % shard_count
        shards[shard].extend(egd_groups[fingerprint])
    for position in tds:
        target = min(range(shard_count), key=lambda s: (len(shards[s]), s))
        shards[target].append(position)
    return tuple(tuple(sorted(shard)) for shard in shards)


def replay_delta(state: ChaseState, delta: StepDelta) -> None:
    """Replay one applied step's delta onto a mirror :class:`ChaseState`.

    The post-step tableau is fully determined by the delta (a td delta adds
    its one row, an egd delta swaps the pre-rewrite rows for their images),
    so a shard can reconstruct the engine's state without seeing the steps
    themselves.  Routing the update through :meth:`ChaseState.advance` keeps
    the mirror's :class:`~repro.chase.row_index.RowIndex` sub-index in sync
    via the same ``apply_delta`` path the live engine state uses -- which is
    exactly what makes the merged shard state byte-identical to a
    sequential run.
    """
    if delta.is_noop:
        return
    if isinstance(delta, TdDelta):
        state.advance(state.relation.with_rows([delta.row]), delta)
    else:
        state.advance(
            state.relation.substitute_rows(delta.removed_rows, delta.changed_rows),
            delta,
        )


class _ShardCore:
    """One shard's incremental worklist over a subset of the dependencies.

    ``owns_state=True`` (process mode): the core holds a private mirror
    :class:`ChaseState` -- a relation copy plus the shard's own
    :class:`~repro.chase.row_index.RowIndex` sub-index -- reconciled at
    every round barrier by replaying the round's deltas through
    :func:`replay_delta`.  ``owns_state=False`` (thread mode): the core
    reads the live engine-owned state, whose index the applied steps
    already keep in sync, so no replay is needed.
    """

    def __init__(
        self,
        members: Iterable[Tuple[int, CompiledDependency]],
        state: ChaseState,
        owns_state: bool,
    ) -> None:
        self._members = tuple(members)
        self._state = state
        self._owns_state = owns_state
        self._seen: Set[Tuple[int, Valuation]] = set()

    def seed(self) -> List[Tuple[int, Valuation]]:
        """Initial triggers of this shard's dependencies (one full scan)."""
        out: List[Tuple[int, Valuation]] = []
        index = self._state.row_index.attr_buckets
        for position, cd in self._members:
            for trigger in find_triggers(self._state, cd, index=index):
                self._emit(position, trigger.valuation, out)
        return out

    def barrier(self, deltas: Sequence[StepDelta]) -> List[Tuple[int, Valuation]]:
        """Merge one round's deltas, then extend matches through changed rows."""
        state = self._state
        if self._owns_state:
            for delta in deltas:
                replay_delta(state, delta)
        relation = state.relation
        index = state.row_index.attr_buckets
        out: List[Tuple[int, Valuation]] = []
        visited: Set[Row] = set()
        for delta in deltas:
            for row in delta.changed_rows:
                # Rows rewritten away by a later merge in the same round are
                # skipped: every new homomorphism also routes through the
                # post-rewrite images, which are some later delta's rows.
                if row in visited or row not in relation:
                    continue
                visited.add(row)
                for position, cd in self._members:
                    extend_through(
                        cd,
                        row,
                        relation,
                        index,
                        lambda alpha, p=position: self._emit(p, alpha, out),
                    )
        return out

    def _emit(
        self, position: int, alpha: Valuation, out: List[Tuple[int, Valuation]]
    ) -> None:
        key = (position, alpha)
        if key in self._seen:
            return
        self._seen.add(key)
        out.append((position, alpha))


def _shard_worker_main(
    conn,
    relation: Relation,
    members: Tuple[Tuple[int, CompiledDependency], ...],
) -> None:
    """Entry point of one shard worker process.

    Seeds immediately (so all workers scan the initial tableau in
    parallel), then serves round barriers until the parent sends ``None``.
    Replies are ``("ok", payload)`` or ``("error", text)`` so a worker
    failure surfaces as a :class:`StrategyError` in the parent instead of a
    hung pipe.
    """
    mirror = ChaseState(relation=relation, fresh=None)
    core = _ShardCore(members, mirror, owns_state=True)
    try:
        try:
            conn.send(("ok", core.seed()))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            conn.send(("error", f"shard seeding failed: {exc!r}"))
            return
        while True:
            message = conn.recv()
            if message is None:
                return
            try:
                conn.send(("ok", core.barrier(message)))
            except Exception as exc:  # noqa: BLE001 - forwarded to the parent
                conn.send(("error", f"shard barrier failed: {exc!r}"))
                return
    except (EOFError, OSError, KeyboardInterrupt):
        return
    finally:
        conn.close()


def _stop_worker(process, conn) -> None:
    """Shut one worker down (normal path and the weakref safety net)."""
    try:
        conn.send(None)
    except (OSError, ValueError, BrokenPipeError):
        pass
    try:
        conn.close()
    except OSError:
        pass
    process.join(timeout=2.0)
    if process.is_alive():  # pragma: no cover - only on a wedged worker
        process.terminate()
        process.join(timeout=2.0)


class _ProcessShard:
    """Parent-side handle of one worker process (request/reply over a pipe)."""

    def __init__(self, ctx, relation, members) -> None:
        self._conn, child = ctx.Pipe()
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(child, relation, members),
            daemon=True,
        )
        self._process.start()
        child.close()
        # Safety net: reap the worker even if close() is never reached.
        self._finalizer = weakref.finalize(
            self, _stop_worker, self._process, self._conn
        )

    def seed_async(self) -> None:
        """No-op: the worker seeds on startup, before its first reply."""

    def request(self, deltas: Sequence[StepDelta]) -> None:
        self._conn.send(list(deltas))

    def collect(self) -> List[Tuple[int, Valuation]]:
        try:
            status, payload = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise StrategyError(f"a shard worker process died: {exc!r}") from exc
        if status != "ok":
            raise StrategyError(payload)
        return payload

    def close(self) -> None:
        self._finalizer()


class _ThreadShard:
    """Parent-side handle of one thread-mode shard (shares the live state)."""

    def __init__(self, core: _ShardCore, pool: ThreadPoolExecutor) -> None:
        self._core = core
        self._pool = pool
        self._future = None

    def seed_async(self) -> None:
        self._future = self._pool.submit(self._core.seed)

    def request(self, deltas: Sequence[StepDelta]) -> None:
        self._future = self._pool.submit(self._core.barrier, deltas)

    def collect(self) -> List[Tuple[int, Valuation]]:
        return self._future.result()

    def close(self) -> None:  # the pool is owned (and shut down) by the strategy
        self._future = None


def _mp_context():
    """The preferred multiprocessing context (fork when the platform has it)."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardedStrategy:
    """Partitioned incremental scheduling: N workers, merged at round barriers.

    The per-dependency trigger worklist of :class:`IncrementalStrategy` is
    partitioned across ``shard_count`` shards by
    :func:`partition_dependencies` (egds grouped by the value-graph
    components their merges can touch, tds balancing the remainder).  Each
    round the engine applies triggers sequentially -- preserving the exact
    step order, fresh-value names, and merge choices of a sequential run --
    while the *discovery* of the next round's triggers fans out: at the
    round barrier every shard replays the round's
    :class:`~repro.chase.steps.TdDelta` / :class:`~repro.chase.steps.EgdDelta`
    stream into its own state (process mode) or reads the live one (thread
    mode) and extends partial matches through the changed rows for its
    dependency subset.  The shard results are merged into one candidate
    list that the engine canonicalizes, dedupes, and orders exactly as for
    the sequential strategies, which is what keeps every run byte-identical
    to ``"incremental"`` and ``"rescan"``.

    Parameters
    ----------
    shard_count:
        How many shards to partition the worklist across.
    executor:
        ``"process"`` runs every shard in a persistent worker process
        (parallel trigger enumeration; per-round pipe traffic is one delta
        stream per shard).  ``"thread"`` runs shards on a thread pool
        sharing the engine's state (no replay cost; enumeration is
        GIL-serialized, so this is the small-tableau fallback).  ``"auto"``
        (default) picks processes once the initial tableau reaches
        ``process_threshold`` rows on a multi-CPU machine, threads
        otherwise, and falls back to threads when worker processes cannot
        be spawned.
    process_threshold:
        The ``"auto"`` cut-over point, in initial-tableau rows.
    """

    name = "sharded"

    def __init__(
        self,
        shard_count: int = DEFAULT_SHARD_COUNT,
        executor: str = "auto",
        process_threshold: int = PROCESS_POOL_THRESHOLD,
    ) -> None:
        if shard_count < 1:
            raise StrategyError("a sharded strategy needs shard_count >= 1")
        if executor not in ("auto", "thread", "process"):
            raise StrategyError(
                f"unknown shard executor {executor!r}; "
                "expected auto, thread, or process"
            )
        self._shard_count = shard_count
        self._executor_choice = executor
        self._process_threshold = process_threshold
        self._state: Optional[ChaseState] = None
        self._compiled: Tuple[CompiledDependency, ...] = ()
        self._shards: List[Union[_ProcessShard, _ThreadShard]] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pending: List[StepDelta] = []
        self._queue: Optional[List[Trigger]] = None
        #: The executor resolved for the current run (set by :meth:`start`).
        self.executor: Optional[str] = None

    @property
    def shard_count(self) -> int:
        """The configured worker count."""
        return self._shard_count

    def start(
        self, state: ChaseState, compiled: Sequence[CompiledDependency]
    ) -> None:
        self.close()
        self._state = state
        self._compiled = tuple(compiled)
        self._pending = []
        parts = [
            members
            for members in partition_dependencies(
                self._compiled, self._shard_count, state.relation
            )
            if members
        ]
        if not parts:
            self._queue = []
            return
        self.executor = self._resolve_executor(state)
        if self.executor == "process":
            try:
                self._spawn_process_shards(state, parts)
            except OSError as exc:
                if self._executor_choice == "process":
                    # The caller pinned processes explicitly; degrading to
                    # GIL-serialized threads would silently change what they
                    # asked to measure or isolate.
                    self.close()
                    raise StrategyError(
                        f"cannot spawn shard worker processes: {exc!r}"
                    ) from exc
                # "auto" in an environment without worker processes
                # (sandboxes, fd limits): degrade to the threaded fallback,
                # same results.
                self.close()
                self.executor = "thread"
        if self.executor == "thread":
            self._spawn_thread_shards(state, parts)
        triggers: List[Trigger] = []
        for shard in self._shards:
            triggers.extend(self._to_triggers(shard.collect()))
        self._queue = triggers

    def next_round(self) -> List[Trigger]:
        if self._queue is not None:
            batch, self._queue = self._queue, None
            return batch
        deltas, self._pending = self._pending, []
        if not deltas or not self._shards:
            return []
        for shard in self._shards:
            shard.request(deltas)
        triggers: List[Trigger] = []
        for shard in self._shards:
            triggers.extend(self._to_triggers(shard.collect()))
        return triggers

    def observe(self, delta: StepDelta) -> None:
        if delta.is_noop:
            return
        self._pending.append(delta)

    def close(self) -> None:
        """Tear down worker processes / the thread pool of the current run."""
        for shard in self._shards:
            shard.close()
        self._shards = []
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._queue = None

    # -- internals -------------------------------------------------------------

    def _resolve_executor(self, state: ChaseState) -> str:
        if self._executor_choice != "auto":
            return self._executor_choice
        # Worker processes only pay off with real parallelism and a tableau
        # big enough that per-round extension work dwarfs the pipe traffic.
        if (
            len(state.relation) >= self._process_threshold
            and (os.cpu_count() or 1) > 1
        ):
            return "process"
        return "thread"

    def _spawn_process_shards(
        self, state: ChaseState, parts: Sequence[Tuple[int, ...]]
    ) -> None:
        ctx = _mp_context()
        for members in parts:
            self._shards.append(
                _ProcessShard(
                    ctx,
                    state.relation,
                    tuple((p, self._compiled[p]) for p in members),
                )
            )

    def _spawn_thread_shards(
        self, state: ChaseState, parts: Sequence[Tuple[int, ...]]
    ) -> None:
        state.row_index  # materialise once, before worker threads share it
        self._pool = ThreadPoolExecutor(
            max_workers=len(parts), thread_name_prefix="chase-shard"
        )
        for members in parts:
            core = _ShardCore(
                tuple((p, self._compiled[p]) for p in members),
                state,
                owns_state=False,
            )
            self._shards.append(_ThreadShard(core, self._pool))
        for shard in self._shards:
            shard.seed_async()

    def _to_triggers(
        self, pairs: Iterable[Tuple[int, Valuation]]
    ) -> List[Trigger]:
        compiled = self._compiled
        return [
            Trigger(compiled[position].dependency, alpha)
            for position, alpha in pairs
        ]


#: The concrete strategies by configuration name (``"auto"`` -> incremental).
STRATEGY_REGISTRY = {
    "rescan": RescanStrategy,
    "incremental": IncrementalStrategy,
    "sharded": ShardedStrategy,
    "auto": IncrementalStrategy,
}


def make_strategy(
    choice: Union[str, ChaseStrategy, None],
    *,
    shard_count: Optional[int] = None,
) -> ChaseStrategy:
    """Resolve a strategy name (or pass through a ready-made instance).

    ``None`` and ``"auto"`` resolve to :class:`IncrementalStrategy`.
    ``shard_count`` configures the ``"sharded"`` strategy's worker count
    (the engine forwards ``ChaseBudget.shard_count`` here) and is ignored
    by every other choice.  A strategy *instance* is returned as-is --
    :meth:`ChaseStrategy.start` resets all per-run bookkeeping, so one
    instance can serve many runs.
    """
    if choice is None:
        choice = "auto"
    if isinstance(choice, str):
        factory = STRATEGY_REGISTRY.get(choice)
        if factory is None:
            raise StrategyError(
                f"unknown chase strategy {choice!r}; "
                f"expected one of {', '.join(sorted(STRATEGY_REGISTRY))}"
            )
        if factory is ShardedStrategy:
            return ShardedStrategy(
                shard_count=(
                    DEFAULT_SHARD_COUNT if shard_count is None else shard_count
                )
            )
        return factory()
    if hasattr(choice, "start") and hasattr(choice, "next_round"):
        return choice
    raise StrategyError(
        f"a chase strategy must be a name or a ChaseStrategy instance, "
        f"got {choice!r}"
    )
