"""Normalisation of arbitrary dependencies to the chase's primitive classes.

The chase engine works with template and equality-generating dependencies
only (the paper's two primitive classes).  Functional, multivalued, join and
projected join dependencies are translated on the way in:

* fd  ->  a finite set of egds (Section 2.3),
* mvd ->  the two-component jd ``*[XY, X(U-Y)]`` (Section 6) -> shallow td,
* jd / pjd -> the shallow td of Lemma 6.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.dependencies.base import Dependency
from repro.dependencies.conversion import fd_to_egds, mvd_to_jd, pjd_to_shallow_td
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.pjd import ProjectedJoinDependency
from repro.dependencies.td import TemplateDependency
from repro.model.attributes import Universe
from repro.util.errors import DependencyError

ChaseDependency = Union[TemplateDependency, EqualityGeneratingDependency]


def normalize_dependency(
    dependency: Dependency, universe: Universe
) -> list[ChaseDependency]:
    """Translate one dependency into equivalent chase primitives over ``universe``."""
    if isinstance(dependency, TemplateDependency):
        if dependency.universe != universe:
            raise DependencyError(
                "the td's universe differs from the implication universe"
            )
        return [dependency]
    if isinstance(dependency, EqualityGeneratingDependency):
        if dependency.universe != universe:
            raise DependencyError(
                "the egd's universe differs from the implication universe"
            )
        return [dependency]
    if isinstance(dependency, FunctionalDependency):
        return list(fd_to_egds(dependency, universe))
    if isinstance(dependency, MultivaluedDependency):
        jd = mvd_to_jd(dependency, universe)
        if len(jd.components) == 1:
            # XY = U: the mvd is trivial, contributing nothing to the chase.
            return []
        return [pjd_to_shallow_td(jd, universe)]
    if isinstance(dependency, ProjectedJoinDependency):
        return [pjd_to_shallow_td(dependency, universe)]
    raise DependencyError(f"cannot normalise dependency of type {type(dependency)!r}")


def normalize_all(
    dependencies: Iterable[Dependency], universe: Universe
) -> list[ChaseDependency]:
    """Translate a whole premise set into chase primitives."""
    result: list[ChaseDependency] = []
    for dependency in dependencies:
        result.extend(normalize_dependency(dependency, universe))
    return result


def infer_universe(dependencies: Sequence[Dependency]) -> Universe:
    """Infer a universe from the dependencies that carry one.

    Tds and egds carry their universe; attribute-level dependencies (fds,
    mvds, pjds) do not (the paper discusses exactly this subtlety for pjds in
    Section 6), so at least one td or egd must be present, or the caller must
    supply a universe explicitly.
    """
    for dependency in dependencies:
        if isinstance(dependency, (TemplateDependency, EqualityGeneratingDependency)):
            return dependency.universe
    raise DependencyError(
        "cannot infer the universe: supply it explicitly when all "
        "dependencies are attribute-level (fd/mvd/jd/pjd)"
    )
