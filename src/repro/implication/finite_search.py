"""Bounded search for finite counterexamples (the finite implication problem).

``Sigma |=_f sigma`` fails exactly when some *finite* relation satisfies
``Sigma`` but not ``sigma``.  The set of such witnesses is recursively
enumerable, so the natural procedure is exhaustive search over finite
relations of bounded size -- which is what this module implements, with two
optimisations:

* the search enumerates relations over *canonical* per-column domains (for a
  typed universe) or a shared domain (untyped), because satisfaction is
  invariant under renaming values;
* candidate relations that do not even embed the conclusion's body are
  skipped immediately (a counterexample must embed it, otherwise the
  conclusion holds vacuously... except for egd/td conclusions whose body
  does not embed -- those are satisfied, so such relations can never refute
  the conclusion).

The search is exponential and only intended for small universes and small
bounds; the paper's whole point is that no procedure, clever or not, decides
the problem in general.
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Iterable, Iterator, Optional, Sequence

from repro.config import (
    ChaseBudget,
    FiniteSearchBudget,
    resolve_finite_search_budget,
    warn_legacy_kwargs,
)
from repro.dependencies.base import Dependency, all_satisfied
from repro.model.attributes import Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import typed, untyped


def candidate_rows(
    universe: Universe, domain_size: int, typed_universe: bool = True
) -> list[Row]:
    """All rows over canonical domains of the given size.

    For a typed universe each column draws from its own pool
    ``{a0, ..., a(k-1)}``; for an untyped one all columns share
    ``{v0, ..., v(k-1)}``.
    """
    attrs = universe.attributes
    pools = []
    for attr in attrs:
        if typed_universe:
            pools.append(
                [typed(f"{attr.name.lower()}{i}", attr) for i in range(domain_size)]
            )
        else:
            pools.append([untyped(f"v{i}") for i in range(domain_size)])
    rows = []
    for cells in product(*pools):
        rows.append(Row(dict(zip(attrs, cells))))
    return rows


def candidate_relations(
    universe: Universe,
    max_rows: int,
    domain_size: int,
    typed_universe: bool = True,
) -> Iterator[Relation]:
    """Enumerate relations with at most ``max_rows`` rows over canonical domains.

    Relations are produced in order of increasing row count, so the first
    counterexample found is one of minimal size within the explored space.
    """
    rows = candidate_rows(universe, domain_size, typed_universe)
    for count in range(1, max_rows + 1):
        for subset in combinations(rows, count):
            yield Relation(universe, subset)


def find_finite_counterexample(
    premises: Sequence[Dependency],
    conclusion: Dependency,
    universe: Universe,
    max_rows: Optional[int] = None,
    domain_size: Optional[int] = None,
    typed_universe: bool = True,
    max_candidates: Optional[int] = None,
    *,
    budget: Optional[FiniteSearchBudget] = None,
) -> Optional[Relation]:
    """Search for a finite relation satisfying the premises but not the conclusion.

    Returns the first counterexample found, or ``None`` if the bounded space
    contains none (which does **not** establish ``Sigma |=_f sigma``).  The
    bounds come from the :class:`~repro.config.FiniteSearchBudget` passed as
    ``budget``; the individual kwargs remain as a deprecated shim (they emit
    ``DeprecationWarning``) and override the corresponding budget fields.
    """
    warn_legacy_kwargs(
        "find_finite_counterexample()",
        max_rows=max_rows,
        domain_size=domain_size,
        max_candidates=max_candidates,
    )
    resolved = resolve_finite_search_budget(
        budget,
        max_rows,
        domain_size,
        max_candidates,
        default=FiniteSearchBudget(max_rows=4),
    )
    examined = 0
    for candidate in candidate_relations(
        universe, resolved.max_rows, resolved.domain_size, typed_universe
    ):
        examined += 1
        if resolved.max_candidates is not None and examined > resolved.max_candidates:
            return None
        if conclusion.satisfied_by(candidate):
            continue
        if all_satisfied(candidate, premises):
            return candidate
    return None


def refute_finitely(
    premises: Sequence[Dependency],
    conclusion: Dependency,
    universe: Universe,
    seeds: Iterable[Relation] = (),
    max_rows: Optional[int] = None,
    domain_size: Optional[int] = None,
    typed_universe: bool = True,
    max_candidates: Optional[int] = None,
    *,
    budget: Optional[FiniteSearchBudget] = None,
    chase_strategy: Optional[str] = None,
    chase_budget: Optional[ChaseBudget] = None,
) -> Optional[Relation]:
    """Like :func:`find_finite_counterexample` but trying caller-provided seeds first.

    Callers often have good candidate witnesses (a terminated chase result,
    the translation of an untyped counterexample, ...); those are checked
    before the blind enumeration starts.  A seed that violates the conclusion
    but *narrowly misses* the premises is additionally repaired by a small
    budgeted chase: a terminating chase turns the seed into a genuine
    premise model, which is a counterexample whenever it still violates the
    conclusion.  The repair chase is scheduled per ``chase_budget`` (whose
    ``chase_strategy`` / ``shard_count`` fields carry the scheduling choice;
    its step/row caps are replaced by the repair's own small ones) or, when
    only a name is at hand, per ``chase_strategy``.
    """
    warn_legacy_kwargs(
        "refute_finitely()",
        max_rows=max_rows,
        domain_size=domain_size,
        max_candidates=max_candidates,
    )
    for seed in seeds:
        if not conclusion.satisfied_by(seed):
            if all_satisfied(seed, premises):
                return seed
            repaired = _repair_seed(
                seed, premises, conclusion, universe, chase_strategy, chase_budget
            )
            if repaired is not None:
                return repaired
    return find_finite_counterexample(
        premises,
        conclusion,
        universe,
        typed_universe=typed_universe,
        budget=resolve_finite_search_budget(
            budget,
            max_rows,
            domain_size,
            max_candidates,
            default=FiniteSearchBudget(max_rows=4),
        ),
    )


def _repair_seed(
    seed: Relation,
    premises: Sequence[Dependency],
    conclusion: Dependency,
    universe: Universe,
    chase_strategy: Optional[str],
    chase_budget: Optional[ChaseBudget] = None,
) -> Optional[Relation]:
    """Chase a near-miss seed into a premise model; keep it if it still refutes.

    Sound by construction: the repaired relation is only returned after
    verifying directly that it satisfies every premise and violates the
    conclusion.  A non-terminating or erroring chase simply abstains.
    """
    from dataclasses import replace

    from repro.chase.engine import chase as run_chase
    from repro.implication.normalize import normalize_all
    from repro.util.errors import ReproError

    try:
        primitives = normalize_all(premises, universe)
        base = (
            chase_budget
            if chase_budget is not None
            else ChaseBudget(chase_strategy=chase_strategy or "auto")
        )
        budget = replace(
            base, max_steps=256, max_rows=max(256, len(seed) * 4)
        )
        result = run_chase(seed, primitives, budget=budget)
    except ReproError:
        return None
    if not result.terminated():
        return None
    repaired = result.relation
    if not conclusion.satisfied_by(repaired) and all_satisfied(repaired, premises):
        return repaired
    return None
