"""Decidable fragment: functional-dependency reasoning.

Fd implication is decidable in linear time by attribute closure; moreover
implication and finite implication coincide for fds.  On top of the closure
test (re-exported from :mod:`repro.dependencies.fd`) this module provides
the schema-design utilities the paper's introduction motivates: equivalence
of dependency sets, redundancy detection, and minimal covers.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dependencies.fd import FunctionalDependency, attribute_closure, fd_implies
from repro.model.attributes import Attribute, AttributeLike, Universe


def closure(
    attributes: Iterable[AttributeLike], fds: Sequence[FunctionalDependency]
) -> frozenset[Attribute]:
    """The attribute closure ``X+`` under a set of fds."""
    return attribute_closure(attributes, fds)


def implies(
    premises: Sequence[FunctionalDependency], conclusion: FunctionalDependency
) -> bool:
    """Decide ``premises |= conclusion`` (equivalently ``|=_f``)."""
    return fd_implies(premises, conclusion)


def equivalent(
    first: Sequence[FunctionalDependency], second: Sequence[FunctionalDependency]
) -> bool:
    """Whether two fd sets imply each other.

    This is the "are two given sets of dependencies equivalent" question the
    paper's introduction names as the motivation for studying implication.
    """
    return all(implies(first, fd) for fd in second) and all(
        implies(second, fd) for fd in first
    )


def redundant_members(
    fds: Sequence[FunctionalDependency]
) -> list[FunctionalDependency]:
    """Fds implied by the remaining members of the set."""
    redundant = []
    for i, fd in enumerate(fds):
        rest = [other for j, other in enumerate(fds) if j != i]
        if implies(rest, fd):
            redundant.append(fd)
    return redundant


def is_redundant(fds: Sequence[FunctionalDependency]) -> bool:
    """Whether at least one member of the set is implied by the others."""
    return bool(redundant_members(fds))


def minimal_cover(fds: Sequence[FunctionalDependency]) -> list[FunctionalDependency]:
    """A minimal cover: singleton right-hand sides, no redundant fds, reduced left sides."""
    # Step 1: split right-hand sides.
    working: list[FunctionalDependency] = []
    for fd in fds:
        working.extend(fd.singletons() or [fd])
    working = [fd for fd in working if not fd.is_trivial()]

    # Step 2: remove extraneous determinant attributes.
    reduced: list[FunctionalDependency] = []
    for fd in working:
        determinant = set(fd.determinant)
        for attr in sorted(fd.determinant):
            if len(determinant) == 1:
                break
            candidate = FunctionalDependency(determinant - {attr}, fd.dependent)
            if implies(working, candidate):
                determinant.discard(attr)
        reduced.append(FunctionalDependency(determinant, fd.dependent))

    # Step 3: drop redundant fds.
    result = list(reduced)
    changed = True
    while changed:
        changed = False
        for fd in list(result):
            rest = [other for other in result if other is not fd]
            if rest and implies(rest, fd):
                result.remove(fd)
                changed = True
                break
    return result


def candidate_keys(
    universe: Universe, fds: Sequence[FunctionalDependency]
) -> list[frozenset[Attribute]]:
    """All minimal keys of the universe under the given fds.

    Exhaustive over subsets (exponential), adequate for the small schemas the
    examples and benchmarks use.
    """
    attrs = list(universe.attributes)
    all_attrs = frozenset(attrs)
    keys: list[frozenset[Attribute]] = []
    for mask in range(1, 2 ** len(attrs)):
        subset = frozenset(a for i, a in enumerate(attrs) if mask & (1 << i))
        if attribute_closure(subset, fds) == all_attrs:
            if not any(key <= subset for key in keys):
                keys = [key for key in keys if not subset <= key]
                keys.append(subset)
    minimal = [key for key in keys if not any(other < key for other in keys)]
    return sorted(minimal, key=lambda key: (len(key), sorted(a.name for a in key)))


def is_bcnf_violation(
    universe: Universe,
    fds: Sequence[FunctionalDependency],
    fd: FunctionalDependency,
) -> bool:
    """Whether ``fd`` violates Boyce-Codd normal form for the schema.

    A non-trivial fd violates BCNF when its determinant is not a superkey.
    Included because automated schema design is the application the paper's
    introduction points at.
    """
    if fd.is_trivial():
        return False
    closure_of_determinant = attribute_closure(fd.determinant, fds)
    return closure_of_determinant != frozenset(universe.attributes)
