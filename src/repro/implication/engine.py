"""The implication facade: one entry point for every dependency class.

:class:`ImplicationEngine` dispatches an implication query to the strongest
applicable procedure:

1. pure-fd queries go to the attribute-closure algorithm (linear time);
2. full (total) dependency sets go to the terminating chase, which decides
   both implication and finite implication;
3. everything else goes to the budgeted chase semi-decision procedure, and
   -- for finite implication -- additionally to the bounded
   finite-counterexample search.

The engine never silently turns "could not decide" into a Boolean: callers
receive an :class:`ImplicationOutcome` whose verdict may be ``UNKNOWN``.

Budgets are configured with a :class:`~repro.config.SolverConfig`; the
historical keyword arguments (``max_steps``, ``max_rows``,
``finite_search_rows``, ``finite_search_domain``) keep working through a
deprecation shim and override the corresponding config fields.
"""

from __future__ import annotations

from typing import MutableMapping, Optional, Sequence

from repro.config import SolverConfig, warn_legacy_kwargs
from repro.dependencies.base import Dependency
from repro.dependencies.fd import FunctionalDependency, fd_implies
from repro.implication.chase_prover import prove
from repro.implication.decidable import full_fragment_implies, is_full
from repro.implication.finite_search import refute_finitely
from repro.implication.normalize import (
    ChaseDependency,
    infer_universe,
    normalize_all,
)
from repro.implication.problem import ImplicationOutcome, ImplicationProblem, Verdict
from repro.model.attributes import Universe
from repro.model.relations import Relation


class ImplicationEngine:
    """Decision / semi-decision procedures for implication over one universe.

    Parameters
    ----------
    universe:
        The universe all queries are interpreted over.  If omitted, it is
        inferred from the first td/egd in each query.
    config:
        The :class:`~repro.config.SolverConfig` carrying the chase budget and
        the finite-search bounds (keyword-only; defaults to
        ``SolverConfig()``).
    max_steps, max_rows:
        Deprecated: budgets for the general (possibly non-terminating)
        chase.  Override ``config.chase`` when given.
    finite_search_rows, finite_search_domain:
        Deprecated: bounds for the finite-counterexample enumeration used by
        :meth:`finitely_implies`.  Override ``config.finite_search`` when
        given.
    premise_cache:
        Optional mutable mapping used to memoize premise-set normalisation
        across queries (the batch path in :mod:`repro.api` supplies one so
        repeated premise sets are converted to chase primitives only once).
    """

    def __init__(
        self,
        universe: Optional[Universe] = None,
        max_steps: Optional[int] = None,
        max_rows: Optional[int] = None,
        finite_search_rows: Optional[int] = None,
        finite_search_domain: Optional[int] = None,
        *,
        config: Optional[SolverConfig] = None,
        premise_cache: Optional[MutableMapping] = None,
    ) -> None:
        resolved = config if config is not None else SolverConfig()
        legacy = {
            name: value
            for name, value in (
                ("max_steps", max_steps),
                ("max_rows", max_rows),
                ("finite_search_rows", finite_search_rows),
                ("finite_search_domain", finite_search_domain),
            )
            if value is not None
        }
        if legacy:
            warn_legacy_kwargs("ImplicationEngine", **legacy)
            chase_overrides = {
                key: legacy[key] for key in ("max_steps", "max_rows") if key in legacy
            }
            if chase_overrides:
                resolved = resolved.with_chase(**chase_overrides)
            search_overrides = {}
            if "finite_search_rows" in legacy:
                search_overrides["max_rows"] = legacy["finite_search_rows"]
            if "finite_search_domain" in legacy:
                search_overrides["domain_size"] = legacy["finite_search_domain"]
            if search_overrides:
                resolved = resolved.with_finite_search(**search_overrides)
        self._universe = universe
        self._config = resolved
        self._premise_cache = premise_cache

    @property
    def config(self) -> SolverConfig:
        """The configuration all queries run under."""
        return self._config

    @property
    def universe(self) -> Optional[Universe]:
        """The fixed universe, or ``None`` when inferred per query."""
        return self._universe

    # -- helpers ---------------------------------------------------------------

    def _resolve_universe(
        self, premises: Sequence[Dependency], conclusion: Dependency
    ) -> Universe:
        if self._universe is not None:
            return self._universe
        return infer_universe([*premises, conclusion])

    def _normalized(
        self, dependencies: tuple[Dependency, ...], universe: Universe
    ) -> list[ChaseDependency]:
        """Normalise a dependency tuple, memoizing when a cache is attached."""
        if self._premise_cache is None:
            return normalize_all(dependencies, universe)
        key = (dependencies, universe)
        cached = self._premise_cache.get(key)
        if cached is None:
            cached = tuple(normalize_all(dependencies, universe))
            self._premise_cache[key] = cached
        return list(cached)

    # -- unrestricted implication ----------------------------------------------

    def implies(
        self, premises: Sequence[Dependency], conclusion: Dependency
    ) -> ImplicationOutcome:
        """Attack ``premises |= conclusion`` with the strongest applicable procedure."""
        universe = self._resolve_universe(premises, conclusion)

        if isinstance(conclusion, FunctionalDependency) and all(
            isinstance(p, FunctionalDependency) for p in premises
        ):
            implied = fd_implies(list(premises), conclusion)
            return ImplicationOutcome(
                Verdict.IMPLIED if implied else Verdict.NOT_IMPLIED,
                reason="decided by attribute closure (fd fragment)",
            )

        if all(is_full(d, universe) for d in [*premises, conclusion]):
            return full_fragment_implies(
                premises,
                conclusion,
                universe,
                budget=self._config.chase.raised_to(20000, 20000),
            )

        premise_primitives = self._normalized(tuple(premises), universe)
        conclusion_primitives = self._normalized((conclusion,), universe)
        if not conclusion_primitives:
            return ImplicationOutcome(
                Verdict.IMPLIED, reason="the conclusion is trivial"
            )
        worst: Optional[ImplicationOutcome] = None
        for primitive in conclusion_primitives:
            outcome = prove(
                premise_primitives,
                primitive,
                trace=self._config.trace,
                budget=self._config.chase,
            )
            if outcome.verdict is Verdict.NOT_IMPLIED:
                return outcome
            if outcome.verdict is Verdict.UNKNOWN:
                worst = outcome
        if worst is not None:
            return worst
        return ImplicationOutcome(
            Verdict.IMPLIED,
            reason="every normalised conclusion follows by the chase",
        )

    # -- finite implication ------------------------------------------------------

    def finitely_implies(
        self,
        premises: Sequence[Dependency],
        conclusion: Dependency,
        seeds: Sequence[Relation] = (),
    ) -> ImplicationOutcome:
        """Attack ``premises |=_f conclusion``.

        Unrestricted implication entails finite implication, so an ``IMPLIED``
        answer from :meth:`implies` is reused.  A terminating chase refutation
        is already a finite counterexample.  Otherwise a bounded search for a
        finite counterexample is attempted; exhausting it proves nothing, so
        the verdict falls back to ``UNKNOWN`` (the problem is not even
        partially solvable, as the paper shows).
        """
        universe = self._resolve_universe(premises, conclusion)
        unrestricted = self.implies(premises, conclusion)
        if unrestricted.verdict is Verdict.IMPLIED:
            return ImplicationOutcome(
                Verdict.IMPLIED,
                reason="unrestricted implication holds, hence finite implication holds",
                chase=unrestricted.chase,
            )
        if (
            unrestricted.verdict is Verdict.NOT_IMPLIED
            and unrestricted.counterexample is not None
        ):
            return ImplicationOutcome(
                Verdict.NOT_IMPLIED,
                reason="a finite counterexample was produced by the terminated chase",
                counterexample=unrestricted.counterexample,
                chase=unrestricted.chase,
            )
        typed_universe = all(
            d.is_typed() and not _uses_untagged_values(d)
            for d in [*premises, conclusion]
        )
        counterexample = refute_finitely(
            premises,
            conclusion,
            universe,
            seeds=seeds,
            typed_universe=typed_universe,
            budget=self._config.finite_search,
            chase_budget=self._config.chase,
        )
        if counterexample is not None:
            return ImplicationOutcome(
                Verdict.NOT_IMPLIED,
                reason="a finite counterexample was found by bounded enumeration",
                counterexample=counterexample,
            )
        return ImplicationOutcome(
            Verdict.UNKNOWN,
            reason=(
                "neither a chase proof nor a finite counterexample was found "
                "within the configured budgets"
            ),
        )

    # -- problem objects ----------------------------------------------------------

    def _with_deadline(self, deadline: float) -> "ImplicationEngine":
        """A shallow clone whose chase budget is cut at ``deadline``.

        The deadline is a per-call property (one service request's patience),
        not part of this engine's identity, so it never mutates ``self`` --
        the clone shares the premise cache and differs only in
        ``config.chase.deadline``.
        """
        from dataclasses import replace

        clone = object.__new__(ImplicationEngine)
        clone._universe = self._universe
        clone._config = replace(
            self._config, chase=self._config.chase.with_deadline(deadline)
        )
        clone._premise_cache = self._premise_cache
        return clone

    def solve(
        self,
        problem: ImplicationProblem,
        *,
        deadline: Optional[float] = None,
    ) -> ImplicationOutcome:
        """Solve an :class:`ImplicationProblem` object.

        ``deadline`` is an absolute ``time.monotonic()`` instant after which
        the chase stops at the next round boundary and raises
        :class:`~repro.util.errors.ChaseDeadlineExceeded` -- it bounds wall
        clock without changing any answer delivered in time.
        """
        engine = self if deadline is None else self._with_deadline(deadline)
        if problem.finite:
            return engine.finitely_implies(list(problem.premises), problem.conclusion)
        return engine.implies(list(problem.premises), problem.conclusion)


def _uses_untagged_values(dependency: Dependency) -> bool:
    """Whether the dependency mentions untagged (untyped-regime) values.

    Untyped dependencies whose variables happen not to repeat across columns
    satisfy the *syntactic* typedness test, but their counterexamples still
    live in the untyped regime -- the finite-counterexample search must then
    enumerate untyped relations, or every candidate would satisfy them
    vacuously.
    """
    from repro.dependencies.egd import EqualityGeneratingDependency
    from repro.dependencies.td import TemplateDependency

    if isinstance(dependency, TemplateDependency):
        values = dependency.body.values() | dependency.conclusion.values()
        return any(value.tag is None for value in values)
    if isinstance(dependency, EqualityGeneratingDependency):
        return any(value.tag is None for value in dependency.body.values())
    return False
