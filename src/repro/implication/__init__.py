"""Implication procedures: chase prover, decidable fragments, finite search."""

from repro.implication.problem import ImplicationOutcome, ImplicationProblem, Verdict
from repro.implication.engine import ImplicationEngine
from repro.implication.chase_prover import prove, prove_egd, prove_td
from repro.implication.decidable import (
    full_fragment_implies,
    is_full,
    jd_implies,
    mvd_fd_implies,
)
from repro.implication.fd_closure import (
    candidate_keys,
    closure,
    equivalent,
    implies,
    is_bcnf_violation,
    is_redundant,
    minimal_cover,
    redundant_members,
)
from repro.implication.finite_search import (
    candidate_relations,
    candidate_rows,
    find_finite_counterexample,
    refute_finitely,
)
from repro.implication.normalize import (
    infer_universe,
    normalize_all,
    normalize_dependency,
)

__all__ = [
    "ImplicationOutcome",
    "ImplicationProblem",
    "Verdict",
    "ImplicationEngine",
    "prove",
    "prove_egd",
    "prove_td",
    "full_fragment_implies",
    "is_full",
    "jd_implies",
    "mvd_fd_implies",
    "candidate_keys",
    "closure",
    "equivalent",
    "implies",
    "is_bcnf_violation",
    "is_redundant",
    "minimal_cover",
    "redundant_members",
    "candidate_relations",
    "candidate_rows",
    "find_finite_counterexample",
    "refute_finitely",
    "infer_universe",
    "normalize_all",
    "normalize_dependency",
]
