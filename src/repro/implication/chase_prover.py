"""Chase-based (semi-)decision procedures for implication.

``Sigma |= (w, I)`` holds iff the chase of ``I`` by ``Sigma`` produces a
relation containing an image of ``w`` that fixes the (representatives of
the) values of ``I``; ``Sigma |= (a = b, I)`` holds iff the chase identifies
``a`` and ``b``.  When the chase terminates the answer is exact and the
terminal relation is itself a (finite) counterexample in the negative case;
when the budget runs out without the conclusion appearing, the answer is
``UNKNOWN`` -- which is the best any total procedure can do, by the very
theorems this library reproduces.

All entry points accept a :class:`~repro.config.ChaseBudget` via the
``budget`` keyword; the historical ``max_steps`` / ``max_rows`` kwargs are
kept as a deprecated shim (they emit ``DeprecationWarning``) and override
the corresponding budget fields.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.chase.engine import ChaseEngine
from repro.chase.result import ChaseResult, ChaseStatus
from repro.config import ChaseBudget, resolve_chase_budget, warn_legacy_kwargs
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.td import TemplateDependency
from repro.implication.normalize import ChaseDependency
from repro.implication.problem import ImplicationOutcome, Verdict
from repro.model.values import Value


def chase_for_conclusion(
    premises: Sequence[ChaseDependency],
    conclusion_body,
    max_steps: Optional[int] = None,
    max_rows: Optional[int] = None,
    trace: bool = False,
    *,
    budget: Optional[ChaseBudget] = None,
    strategy: Optional[str] = None,
) -> ChaseResult:
    """Chase the conclusion's body with the premise set.

    ``strategy`` overrides the budget's ``chase_strategy`` field (see
    :mod:`repro.chase.strategies`).
    """
    warn_legacy_kwargs("chase_for_conclusion()", max_steps=max_steps, max_rows=max_rows)
    engine = ChaseEngine(
        list(premises),
        trace=trace,
        budget=resolve_chase_budget(budget, max_steps, max_rows),
        strategy=strategy,
    )
    return engine.run(conclusion_body)


def td_conclusion_holds(result: ChaseResult, conclusion: TemplateDependency) -> bool:
    """Whether the chased tableau contains the conclusion row's image.

    Values of ``w`` that occur in the body are pinned to their current
    representatives; existential values of ``w`` may match anything of the
    right type.
    """
    fixed: dict[Value, Value] = {
        value: result.resolve(value) for value in conclusion.body.values()
    }
    return result.find_row(conclusion.conclusion, fixed) is not None


def egd_conclusion_holds(
    result: ChaseResult, conclusion: EqualityGeneratingDependency
) -> bool:
    """Whether the chase identified the two sides of the conclusion egd."""
    return result.merged(conclusion.left, conclusion.right)


def outcome_from_result(
    result: ChaseResult,
    conclusion: ChaseDependency,
) -> ImplicationOutcome:
    """Judge a finished (or budget-cut) chase result against a conclusion.

    The single classification step shared by :func:`prove_td`,
    :func:`prove_egd` and the service's checkpoint-resume path -- a resumed
    chase re-enters the very same judgement an uninterrupted run would have
    received.
    """
    if isinstance(conclusion, TemplateDependency):
        held = td_conclusion_holds(result, conclusion)
        implied_reason = "the chased body contains the conclusion row"
        refuted_reason = (
            "the chase terminated without producing the conclusion row; "
            "the terminal relation is a finite counterexample"
        )
    else:
        held = egd_conclusion_holds(result, conclusion)
        implied_reason = "the chase identified the two sides of the equality"
        refuted_reason = (
            "the chase terminated without identifying the two sides; "
            "the terminal relation is a finite counterexample"
        )
    if held:
        return ImplicationOutcome(Verdict.IMPLIED, reason=implied_reason, chase=result)
    if result.status is ChaseStatus.TERMINATED:
        return ImplicationOutcome(
            Verdict.NOT_IMPLIED,
            reason=refuted_reason,
            counterexample=result.relation,
            chase=result,
        )
    return ImplicationOutcome(
        Verdict.UNKNOWN,
        reason="the chase exhausted its budget before converging",
        chase=result,
    )


def prove_td(
    premises: Sequence[ChaseDependency],
    conclusion: TemplateDependency,
    max_steps: Optional[int] = None,
    max_rows: Optional[int] = None,
    trace: bool = False,
    *,
    budget: Optional[ChaseBudget] = None,
    strategy: Optional[str] = None,
) -> ImplicationOutcome:
    """Run the chase prover on ``premises |= conclusion`` for a td conclusion."""
    warn_legacy_kwargs("prove_td()", max_steps=max_steps, max_rows=max_rows)
    result = chase_for_conclusion(
        premises,
        conclusion.body,
        trace=trace,
        budget=resolve_chase_budget(budget, max_steps, max_rows),
        strategy=strategy,
    )
    return outcome_from_result(result, conclusion)


def prove_egd(
    premises: Sequence[ChaseDependency],
    conclusion: EqualityGeneratingDependency,
    max_steps: Optional[int] = None,
    max_rows: Optional[int] = None,
    trace: bool = False,
    *,
    budget: Optional[ChaseBudget] = None,
    strategy: Optional[str] = None,
) -> ImplicationOutcome:
    """Run the chase prover on ``premises |= conclusion`` for an egd conclusion."""
    warn_legacy_kwargs("prove_egd()", max_steps=max_steps, max_rows=max_rows)
    if conclusion.is_trivial():
        return ImplicationOutcome(
            Verdict.IMPLIED, reason="the conclusion equates a value with itself"
        )
    result = chase_for_conclusion(
        premises,
        conclusion.body,
        trace=trace,
        budget=resolve_chase_budget(budget, max_steps, max_rows),
        strategy=strategy,
    )
    return outcome_from_result(result, conclusion)


def prove(
    premises: Sequence[ChaseDependency],
    conclusion: ChaseDependency,
    max_steps: Optional[int] = None,
    max_rows: Optional[int] = None,
    trace: bool = False,
    *,
    budget: Optional[ChaseBudget] = None,
    strategy: Optional[str] = None,
) -> ImplicationOutcome:
    """Dispatch on the conclusion's class (td or egd).

    ``strategy`` overrides the budget's ``chase_strategy`` field, letting a
    caller pin the scheduling strategy without rebuilding the budget.
    """
    warn_legacy_kwargs("prove()", max_steps=max_steps, max_rows=max_rows)
    resolved = resolve_chase_budget(budget, max_steps, max_rows)
    if isinstance(conclusion, TemplateDependency):
        return prove_td(
            premises, conclusion, trace=trace, budget=resolved, strategy=strategy
        )
    return prove_egd(
        premises, conclusion, trace=trace, budget=resolved, strategy=strategy
    )
