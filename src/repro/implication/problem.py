"""Implication problems and verdicts (Section 2.3).

``Sigma |= sigma`` (unrestricted implication) quantifies over all relations,
``Sigma |=_f sigma`` (finite implication) over all finite relations.  Both
problems are undecidable for the dependency classes the paper studies, so
the library's procedures return a three-valued :class:`Verdict`: a definite
``IMPLIED`` or ``NOT_IMPLIED`` whenever one could be established within the
configured budgets, and ``UNKNOWN`` otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.chase.result import ChaseResult
from repro.dependencies.base import Dependency
from repro.model.relations import Relation


class Verdict(enum.Enum):
    """Outcome of an implication query."""

    IMPLIED = "implied"
    NOT_IMPLIED = "not_implied"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "a Verdict must be compared explicitly; truthiness would silently "
            "conflate NOT_IMPLIED with UNKNOWN"
        )


@dataclass(frozen=True)
class ImplicationProblem:
    """A single instance of the (finite) implication problem."""

    premises: tuple[Dependency, ...]
    conclusion: Dependency
    finite: bool = False

    @classmethod
    def of(
        cls,
        premises: Sequence[Dependency],
        conclusion: Dependency,
        finite: bool = False,
    ) -> "ImplicationProblem":
        """Build a problem instance from any dependency sequence."""
        return cls(tuple(premises), conclusion, finite)

    def describe(self) -> str:
        """Render the problem in the paper's ``Sigma |= sigma`` notation."""
        relation_symbol = "|=_f" if self.finite else "|="
        premise_text = ", ".join(p.describe().splitlines()[0] for p in self.premises)
        conclusion_text = self.conclusion.describe().splitlines()[0]
        return f"{{{premise_text}}} {relation_symbol} {conclusion_text}"

    def to_dict(self) -> dict:
        """A JSON-serializable summary of the problem statement."""
        return {
            "premises": [p.describe().splitlines()[0] for p in self.premises],
            "conclusion": self.conclusion.describe().splitlines()[0],
            "finite": self.finite,
        }


@dataclass(frozen=True)
class ImplicationOutcome:
    """The result of running a procedure on an implication problem.

    Attributes
    ----------
    verdict:
        Three-valued answer.
    reason:
        Short human-readable justification (which procedure decided, or why
        the answer is unknown).
    counterexample:
        A finite relation witnessing ``NOT_IMPLIED``, when one was produced.
    chase:
        The chase result the verdict was derived from, when applicable.
    """

    verdict: Verdict
    reason: str
    counterexample: Optional[Relation] = None
    chase: Optional[ChaseResult] = None

    def is_implied(self) -> bool:
        """Whether the verdict is a definite yes."""
        return self.verdict is Verdict.IMPLIED

    def is_refuted(self) -> bool:
        """Whether the verdict is a definite no."""
        return self.verdict is Verdict.NOT_IMPLIED

    def is_unknown(self) -> bool:
        """Whether the procedure could not decide within its budget."""
        return self.verdict is Verdict.UNKNOWN

    def to_dict(self, include_counterexample: bool = True) -> dict:
        """A JSON-serializable view of the outcome.

        The chase result is summarised by its status/step/round counters (the
        full relation is reachable via ``counterexample`` in the refuted
        case); pass ``include_counterexample=False`` to drop the relation
        payload for compact transport.
        """
        payload: dict = {
            "verdict": self.verdict.value,
            "reason": self.reason,
        }
        if self.counterexample is not None and include_counterexample:
            payload["counterexample"] = self.counterexample.to_dict()
        if self.chase is not None:
            payload["chase"] = {
                "status": self.chase.status.value,
                "steps": self.chase.steps,
                "rounds": self.chase.rounds,
                "rows": len(self.chase.relation),
            }
        return payload
