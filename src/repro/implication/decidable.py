"""Decidable fragments: fd + mvd + total jd implication via a terminating chase.

Every total (full) template dependency and every egd keeps the chase inside
the finite space of rows over the initial tableau's values, so the chase is
a decision procedure for implication -- and, because the terminal chase
relation is finite, implication and finite implication coincide on this
fragment.  This covers fds, total mvds and total jds, the classes for which
the paper cites decidability results ([1, 22, 26]).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.chase.termination import all_total
from repro.config import ChaseBudget, resolve_chase_budget, warn_legacy_kwargs
from repro.dependencies.base import Dependency
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.pjd import ProjectedJoinDependency
from repro.dependencies.td import TemplateDependency
from repro.implication.chase_prover import prove
from repro.implication.normalize import normalize_all, normalize_dependency
from repro.implication.problem import ImplicationOutcome, Verdict
from repro.model.attributes import Universe
from repro.util.errors import DependencyError

FullDependency = Union[
    FunctionalDependency,
    MultivaluedDependency,
    ProjectedJoinDependency,
    EqualityGeneratingDependency,
    TemplateDependency,
]


def is_full(dependency: Dependency, universe: Universe) -> bool:
    """Whether the dependency normalises to total tds / egds over ``universe``."""
    try:
        primitives = normalize_dependency(dependency, universe)
    except DependencyError:
        return False
    return all_total(primitives)


def full_fragment_implies(
    premises: Sequence[Dependency],
    conclusion: Dependency,
    universe: Universe,
    max_steps: Optional[int] = None,
    max_rows: Optional[int] = None,
    *,
    budget: Optional[ChaseBudget] = None,
) -> ImplicationOutcome:
    """Decide implication when premises and conclusion are all full dependencies.

    Raises :class:`DependencyError` if some dependency falls outside the full
    fragment (use the general engine for those).  The verdict is never
    ``UNKNOWN`` unless the (generous) safety budget is hit, which would
    indicate an instance far larger than this decision procedure is meant
    for.
    """
    for dependency in [*premises, conclusion]:
        if not is_full(dependency, universe):
            raise DependencyError(
                f"{dependency.describe()} is not a full dependency; "
                "the terminating-chase procedure does not apply"
            )
    warn_legacy_kwargs(
        "full_fragment_implies()", max_steps=max_steps, max_rows=max_rows
    )
    resolved = resolve_chase_budget(
        budget, max_steps, max_rows, default=ChaseBudget.generous()
    )
    premise_primitives = normalize_all(premises, universe)
    conclusion_primitives = normalize_dependency(conclusion, universe)
    if not conclusion_primitives:
        return ImplicationOutcome(Verdict.IMPLIED, reason="the conclusion is trivial")
    last_outcome: ImplicationOutcome | None = None
    for primitive in conclusion_primitives:
        outcome = prove(premise_primitives, primitive, budget=resolved)
        if outcome.verdict is not Verdict.IMPLIED:
            return outcome
        last_outcome = outcome
    return ImplicationOutcome(
        Verdict.IMPLIED,
        reason="every normalised conclusion follows by the terminating chase",
        chase=last_outcome.chase if last_outcome is not None else None,
    )


def mvd_fd_implies(
    premises: Sequence[Dependency],
    conclusion: Dependency,
    universe: Universe,
) -> bool:
    """Boolean convenience wrapper for the fd/mvd fragment.

    ``True``/``False`` is safe to return here because the chase terminates on
    this fragment; a budget overrun raises instead of guessing.
    """
    outcome = full_fragment_implies(premises, conclusion, universe)
    if outcome.verdict is Verdict.UNKNOWN:
        raise DependencyError(
            "the terminating-chase budget was exceeded; increase max_steps/max_rows"
        )
    return outcome.verdict is Verdict.IMPLIED


def jd_implies(
    premises: Sequence[Dependency],
    conclusion: ProjectedJoinDependency,
    universe: Universe,
) -> bool:
    """Decide implication of a total join dependency from full premises."""
    if not conclusion.is_total_over(universe):
        raise DependencyError(
            "jd_implies decides total join dependencies only; "
            "projected/embedded jds fall outside the decidable fragment"
        )
    return mvd_fd_implies(premises, conclusion, universe)
