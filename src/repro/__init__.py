"""repro: typed template dependencies, the chase, and the Vardi (1982/84) reductions.

A from-scratch implementation of the machinery in Moshe Y. Vardi, "The
Implication and Finite Implication Problems for Typed Template Dependencies"
(PODS 1982 / JCSS 28, 1984):

* a relational substrate with typed and untyped relations,
* template / equality-generating / functional / multivalued / (projected)
  join dependencies with exact satisfaction semantics,
* the chase proof procedure with explicit budgets and termination analysis,
* decision and semi-decision procedures for implication and finite
  implication,
* every construction of the paper: the Section 3/4 translation ``T`` and its
  inverse, the structural set ``Sigma_0``, the Lemma 9 fd gadgets, the
  Section 6 shallow-td translation, the Lemma 10 mvd simulation, the
  Theorem 2 and Theorem 6 reduction pipelines, formal systems, Armstrong
  relations, and the semigroup encoding behind Theorems 3-4.

The recommended entry point is the :mod:`repro.api` facade, which bundles a
dependency DSL, frozen budget objects and a batch solving path:

Quickstart::

    from repro.api import Solver

    solver = Solver(universe="ABC")
    outcome = solver.implies(["A -> B"], "A ->> B")
    assert outcome.is_implied()

    # Batch path: repeated premise sets / problems are solved once.
    problems = [
        solver.problem(["A -> B"], "A ->> B"),
        solver.problem(["A ->> B"], "join[AB, AC]"),
        solver.problem(["A -> B"], "A ->> B"),   # served from cache
    ]
    outcomes = solver.solve_many(problems)
    print([o.to_dict() for o in outcomes])

The per-module constructors (:class:`repro.implication.ImplicationEngine`,
:func:`repro.chase.chase`, ...) remain available and now also accept the
same frozen config objects.
"""

from repro import (
    algebra,
    api,
    chase,
    config,
    core,
    dependencies,
    implication,
    model,
    semigroups,
    util,
)

__version__ = "1.1.0"

__all__ = [
    "algebra",
    "api",
    "chase",
    "config",
    "core",
    "dependencies",
    "implication",
    "model",
    "semigroups",
    "util",
    "__version__",
]
