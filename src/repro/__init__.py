"""repro: typed template dependencies, the chase, and the Vardi (1982/84) reductions.

A from-scratch implementation of the machinery in Moshe Y. Vardi, "The
Implication and Finite Implication Problems for Typed Template Dependencies"
(PODS 1982 / JCSS 28, 1984):

* a relational substrate with typed and untyped relations,
* template / equality-generating / functional / multivalued / (projected)
  join dependencies with exact satisfaction semantics,
* the chase proof procedure with explicit budgets and termination analysis,
* decision and semi-decision procedures for implication and finite
  implication,
* every construction of the paper: the Section 3/4 translation ``T`` and its
  inverse, the structural set ``Sigma_0``, the Lemma 9 fd gadgets, the
  Section 6 shallow-td translation, the Lemma 10 mvd simulation, the
  Theorem 2 and Theorem 6 reduction pipelines, formal systems, Armstrong
  relations, and the semigroup encoding behind Theorems 3-4.

Quickstart::

    from repro.model import Universe
    from repro.dependencies import FunctionalDependency, MultivaluedDependency
    from repro.implication import ImplicationEngine

    U = Universe.from_names("ABC")
    engine = ImplicationEngine(universe=U)
    outcome = engine.implies(
        [FunctionalDependency(["A"], ["B"])],
        MultivaluedDependency(["A"], ["B"]),
    )
    assert outcome.is_implied()
"""

from repro import algebra, chase, core, dependencies, implication, model, semigroups, util

__version__ = "1.0.0"

__all__ = [
    "algebra",
    "chase",
    "core",
    "dependencies",
    "implication",
    "model",
    "semigroups",
    "util",
    "__version__",
]
