"""The project-join mapping ``m_R`` as a relational-algebra computation.

This is the "algebraic" view of projected join dependencies (Section 6 and
Yannakakis-Papadimitriou): ``m_R(I)`` is the natural join of the projections
``I[R_1], ..., I[R_k]``, and ``*[R]_X`` holds iff projecting that join back
onto ``X`` gives nothing beyond ``I[X]``.  The dependency-level
implementation in :mod:`repro.dependencies.pjd` is independent; the two are
tested against each other.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.operators import join_all
from repro.dependencies.pjd import ProjectedJoinDependency
from repro.model.attributes import AttributeLike
from repro.model.relations import Relation


def project_join_algebraic(
    relation: Relation, components: Sequence[Iterable[AttributeLike]]
) -> Relation:
    """``m_R(I)`` computed as the natural join of the component projections."""
    projections = [relation.project(component) for component in components]
    return join_all(projections)


def pjd_holds_algebraic(relation: Relation, pjd: ProjectedJoinDependency) -> bool:
    """Decide ``I |= *[R]_X`` through the algebraic route."""
    universe = relation.universe
    components = [sorted(c, key=universe.index_of) for c in pjd.components]
    joined = project_join_algebraic(relation, components)
    projection_attrs = sorted(pjd.projection, key=universe.index_of)
    return (
        joined.project(projection_attrs).rows
        <= relation.project(projection_attrs).rows
    )


def answer_projection_from_views(
    views: Sequence[Relation], target: Iterable[AttributeLike]
) -> Relation:
    """Compute ``(R_1 join ... join R_k)[X]`` from the component views alone.

    Section 6 motivates pjds by the question whether ``I[X]`` can be computed
    from the projections ``I[R_1], ..., I[R_k]``; this helper performs that
    computation, and together with :func:`pjd_holds_algebraic` lets the
    examples demonstrate when the reconstruction is faithful.
    """
    joined = join_all(views)
    return joined.project(target)
