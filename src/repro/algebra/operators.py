"""Relational-algebra operators over the library's Relation objects.

The paper only needs projection and the project-join mapping, but a usable
library (and the example applications) also want selection, natural join,
renaming and union, so the full classical set is provided here.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from repro.model.attributes import Attribute, AttributeLike, Universe, as_attribute
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import SchemaError


def projection(relation: Relation, attributes: Iterable[AttributeLike]) -> Relation:
    """``pi_X(I)``: the projection of a relation onto an attribute set."""
    return relation.project(attributes)


def selection(relation: Relation, predicate: Callable[[Row], bool]) -> Relation:
    """``sigma_p(I)``: the rows of a relation satisfying a predicate."""
    return relation.restrict_rows(predicate)


def equality_selection(
    relation: Relation, attribute: AttributeLike, value: Value
) -> Relation:
    """``sigma_{A = value}(I)``."""
    attr = as_attribute(attribute)
    return relation.restrict_rows(lambda row: row[attr] == value)


def renaming(
    relation: Relation, mapping: Mapping[AttributeLike, AttributeLike]
) -> Relation:
    """``rho(I)``: rename attributes (retagging typed values accordingly)."""
    return relation.rename_attributes(mapping)


def union(left: Relation, right: Relation) -> Relation:
    """Set union of two relations over the same universe."""
    return left.union(right)


def difference(left: Relation, right: Relation) -> Relation:
    """Set difference of two relations over the same universe."""
    return left.difference(right)


def natural_join(left: Relation, right: Relation) -> Relation:
    """The natural join of two relations on their shared attributes.

    Typed values make "shared attribute" the only way rows can agree, which
    is exactly the typed-regime reading of the join.
    """
    left_attrs = list(left.universe)
    right_attrs = list(right.universe)
    shared = [a for a in left_attrs if a in right.universe]
    merged_universe = Universe(
        left_attrs + [a for a in right_attrs if a not in left.universe]
    )
    rows = []
    right_index: dict[tuple, list[Row]] = {}
    for row in right:
        key = tuple(row[a] for a in shared)
        right_index.setdefault(key, []).append(row)
    for row in left:
        key = tuple(row[a] for a in shared)
        for other in right_index.get(key, []):
            cells = {a: row[a] for a in left_attrs}
            for attr in right_attrs:
                cells[attr] = other[attr]
            rows.append(Row(cells))
    return Relation(merged_universe, rows)


def join_all(relations: Iterable[Relation]) -> Relation:
    """The natural join of a non-empty sequence of relations."""
    relations = list(relations)
    if not relations:
        raise SchemaError("join_all needs at least one relation")
    result = relations[0]
    for relation in relations[1:]:
        result = natural_join(result, relation)
    return result


def decompose(
    relation: Relation, components: Iterable[Iterable[AttributeLike]]
) -> list[Relation]:
    """Project a relation onto each component scheme (a lossless-join test helper)."""
    return [relation.project(component) for component in components]


def is_lossless_decomposition(
    relation: Relation, components: Iterable[Iterable[AttributeLike]]
) -> bool:
    """Whether joining the projections reconstructs the relation exactly.

    This is the semantic reading of the join dependency ``*[R_1, ..., R_k]``
    when the components cover the relation's universe.
    """
    components = [list(c) for c in components]
    covered: set[Attribute] = set()
    for component in components:
        covered.update(as_attribute(a) for a in component)
    if covered != set(relation.universe.attributes):
        raise SchemaError("the components must cover the relation's universe")
    rejoined = join_all(decompose(relation, components))
    aligned = Relation(
        relation.universe,
        (Row({a: row[a] for a in relation.universe}) for row in rejoined),
    )
    return aligned.rows == relation.rows
