"""Tableau queries and containment (Aho-Sagiv-Ullman).

Lemma 6 of the paper points to "the connection between relational
expressions and tableaux" to identify pjds with shallow tds.  This module
supplies that connection for the library: a tableau query is a body relation
of variables plus a summary row; evaluation maps the variables into an
instance; containment of tableau queries is homomorphism existence between
them, which is also how the library tests equivalence of dependencies'
bodies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.valuations import Valuation, homomorphisms
from repro.util.errors import DependencyError


@dataclass(frozen=True)
class TableauQuery:
    """A tableau query: a body of variable rows plus a summary row.

    The summary row's values must all occur in the body (a *proper* tableau
    query); evaluation returns, for every embedding of the body, the image of
    the summary.
    """

    summary: Row
    body: Relation

    def __post_init__(self) -> None:
        if not self.summary.values() <= self.body.values():
            raise DependencyError(
                "every summary value of a tableau query must occur in its body"
            )
        if set(self.summary.scheme) > set(self.body.universe.attributes):
            raise DependencyError("the summary row mentions unknown attributes")

    def evaluate(self, instance: Relation) -> Relation:
        """Evaluate the query over an instance."""
        target_attrs = self.summary.scheme
        rows = set()
        for alpha in homomorphisms(self.body, instance):
            rows.add(Row({attr: alpha(self.summary[attr]) for attr in target_attrs}))
        from repro.model.attributes import Universe

        return Relation(Universe(target_attrs), rows)

    def homomorphisms_to(self, other: "TableauQuery") -> Iterator[Valuation]:
        """Containment mappings from this query into ``other``.

        A containment mapping sends this query's body into the other's body
        and this summary onto the other's summary.
        """
        if set(self.summary.scheme) != set(other.summary.scheme):
            return
        seed_pairs = {}
        consistent = True
        for attr in self.summary.scheme:
            source = self.summary[attr]
            target = other.summary[attr]
            existing = seed_pairs.get(source)
            if existing is not None and existing != target:
                consistent = False
                break
            if source.tag != target.tag:
                consistent = False
                break
            seed_pairs[source] = target
        if not consistent:
            return
        seed = Valuation(seed_pairs)
        yield from homomorphisms(self.body, other.body, seed=seed)

    def is_contained_in(self, other: "TableauQuery") -> bool:
        """Whether this query's answers are contained in ``other``'s on every instance.

        By the Homomorphism Theorem (Chandra-Merlin / Aho-Sagiv-Ullman) this
        holds iff a containment mapping exists from ``other`` into ``self``.
        """
        return next(other.homomorphisms_to(self), None) is not None

    def is_equivalent_to(self, other: "TableauQuery") -> bool:
        """Mutual containment."""
        return self.is_contained_in(other) and other.is_contained_in(self)


def td_as_boolean_tableaux(td) -> tuple[TableauQuery, TableauQuery]:
    """View a template dependency as a pair of Boolean tableau queries.

    ``J |= (w, I)`` says the query asking "does the body embed?" is contained
    in the query asking "does the body extended with ``w`` embed?", evaluated
    over ``J``.  The helper returns (body-only query, body-plus-conclusion
    query) with a common summary over the body's repeated values; it is used
    by tests relating td satisfaction to tableau containment.
    """
    body = td.body
    extended = body.with_rows([_ground_conclusion(td)])
    anchor = next(iter(body.sorted_rows()))
    summary = anchor
    return TableauQuery(summary, body), TableauQuery(summary, extended)


def _ground_conclusion(td) -> Row:
    """The conclusion row with existential values kept as-is (fresh variables)."""
    return td.conclusion


def minimize(query: TableauQuery) -> TableauQuery:
    """A minimal equivalent sub-tableau (greedy row removal).

    Classic tableau minimisation: repeatedly drop a body row if the smaller
    query is still equivalent to the original.  The result is unique up to
    isomorphism for satisfiable tableaux.
    """
    current = query
    changed = True
    while changed:
        changed = False
        for row in current.body.sorted_rows():
            if len(current.body) == 1:
                break
            candidate_body = current.body.without_rows([row])
            if not current.summary.values() <= candidate_body.values():
                continue
            candidate = TableauQuery(current.summary, candidate_body)
            if candidate.is_equivalent_to(current):
                current = candidate
                changed = True
                break
    return current
