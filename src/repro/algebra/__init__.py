"""Relational algebra substrate: operators, project-join, tableau queries."""

from repro.algebra.operators import (
    decompose,
    difference,
    equality_selection,
    is_lossless_decomposition,
    join_all,
    natural_join,
    projection,
    renaming,
    selection,
    union,
)
from repro.algebra.project_join import (
    answer_projection_from_views,
    pjd_holds_algebraic,
    project_join_algebraic,
)
from repro.algebra.tableau_queries import TableauQuery, minimize, td_as_boolean_tableaux

__all__ = [
    "decompose",
    "difference",
    "equality_selection",
    "is_lossless_decomposition",
    "join_all",
    "natural_join",
    "projection",
    "renaming",
    "selection",
    "union",
    "answer_projection_from_views",
    "pjd_holds_algebraic",
    "project_join_algebraic",
    "TableauQuery",
    "minimize",
    "td_as_boolean_tableaux",
]
