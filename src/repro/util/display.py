"""ASCII rendering of relations, tableaux and dependencies.

The paper presents every construction as a small table (Examples 1-4, the
sigma_0 tableau, the Lemma 10 chase chain).  These helpers render library
objects in the same visual style, which makes the worked-example tests and
the example scripts directly comparable to the paper's figures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checking only
    from repro.model.relations import Relation
    from repro.model.tuples import Row


def _column_widths(header: Sequence[str], body: Sequence[Sequence[str]]) -> list[int]:
    widths = [len(h) for h in header]
    for line in body:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))
    return widths


def format_table(
    header: Sequence[str],
    body: Sequence[Sequence[str]],
    row_labels: Sequence[str] | None = None,
) -> str:
    """Format a header plus rows of cells as a plain-text table."""
    if row_labels is not None:
        header = ["", *header]
        body = [[label, *line] for label, line in zip(row_labels, body)]
    widths = _column_widths(header, body)
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)).rstrip())
    return "\n".join(lines)


def render_relation(
    relation: "Relation",
    row_labels: Mapping["Row", str] | None = None,
    sort_rows: bool = True,
) -> str:
    """Render a relation (or tableau) in the paper's tabular style.

    Parameters
    ----------
    relation:
        The relation to render.
    row_labels:
        Optional mapping from rows to display labels (e.g. ``s``, ``T(w1)``,
        ``N(a)`` as in Example 1).
    sort_rows:
        Sort rows lexicographically by their rendered cells for a stable
        output.  Disable to preserve insertion order where available.
    """
    attrs = list(relation.universe)
    header = [a.name for a in attrs]
    rows = list(relation)
    rendered = [[str(row[a]) for a in attrs] for row in rows]
    labels = None
    if row_labels is not None:
        labels = [row_labels.get(row, "") for row in rows]
    if sort_rows:
        order = sorted(range(len(rows)), key=lambda i: rendered[i])
        rendered = [rendered[i] for i in order]
        if labels is not None:
            labels = [labels[i] for i in order]
    return format_table(header, rendered, labels)


def render_dependency(dependency: object) -> str:
    """Render a dependency using its own ``describe`` hook when available."""
    describe = getattr(dependency, "describe", None)
    if callable(describe):
        return describe()
    return repr(dependency)


def render_valuation(mapping: Mapping[object, object]) -> str:
    """Render a valuation as ``x -> y`` lines, sorted by source."""
    pairs = sorted((str(k), str(v)) for k, v in mapping.items())
    return "\n".join(f"{k} -> {v}" for k, v in pairs)


def bullet_list(items: Iterable[object]) -> str:
    """Render items as an indented bullet list (used by example scripts)."""
    return "\n".join(f"  - {item}" for item in items)
