"""Shared utilities: error hierarchy, fresh-name supplies, display helpers."""

from repro.util.errors import (
    ReproError,
    SchemaError,
    TypingError,
    DependencyError,
    ChaseBudgetExceeded,
    TranslationError,
)
from repro.util.fresh import FreshSupply
from repro.util.display import render_relation, render_dependency

__all__ = [
    "ReproError",
    "SchemaError",
    "TypingError",
    "DependencyError",
    "ChaseBudgetExceeded",
    "TranslationError",
    "FreshSupply",
    "render_relation",
    "render_dependency",
]
