"""Exception hierarchy for the repro library.

Every error raised deliberately by the library derives from :class:`ReproError`
so that callers can catch library failures without catching programming errors
such as ``TypeError`` or ``KeyError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A universe / attribute-set operation was used inconsistently.

    Examples: projecting a relation onto attributes outside its universe,
    building a row that does not cover its universe, or mixing rows over
    different universes in one relation.
    """


class TypingError(ReproError):
    """A typed-relation invariant was violated.

    Typed relations require that no value appear in two different columns
    (equivalently, every value carries the tag of the single attribute whose
    domain it belongs to).  Operations that would break this raise
    ``TypingError``.
    """


class DependencyError(ReproError):
    """A dependency object was constructed or used incorrectly.

    Examples: an equality-generating dependency whose equated values do not
    occur in its body, a template dependency whose conclusion row is over the
    wrong universe, or a projected join dependency whose projection set is not
    covered by its components.
    """


class ChaseBudgetExceeded(ReproError):
    """The chase ran out of its step or size budget before converging.

    The chase for unrestricted template dependencies need not terminate (the
    implication problem is undecidable -- the very point of the reproduced
    paper), so the engine enforces explicit budgets and reports exhaustion
    through this exception or through an ``UNKNOWN`` verdict, never by
    looping forever.
    """


class ChaseDeadlineExceeded(ChaseBudgetExceeded):
    """The chase was cut off by a wall-clock deadline, not a step/row budget.

    Raised when :attr:`repro.config.ChaseBudget.deadline` (an absolute
    ``time.monotonic()`` instant) passes before the chase converges.  A
    subclass of :class:`ChaseBudgetExceeded` so existing budget handling
    keeps working; the service maps it to its own stable wire code
    (``deadline_exceeded``) so clients can tell "you asked too much" from
    "you ran out of time".  Like its parent, the raising path seals a
    resumable checkpoint first when checkpointing is on and attaches the
    token as ``.checkpoint``.
    """


class TranslationError(ReproError):
    """A paper translation (T, T^-1, shallow, ...) received invalid input.

    Examples: applying the Section 3 translation ``T`` to a relation that is
    not over the untyped universe A'B'C', or applying ``T^-1`` to a typed
    relation that does not contain the sentinel row ``s``.
    """


class FormalSystemError(ReproError):
    """A formal-system proof object is malformed or fails verification."""
