"""Deterministic fresh-name supplies.

The chase and the paper's translations constantly need "a value that occurs
nowhere else".  :class:`FreshSupply` hands out such names deterministically
(so tests and benchmarks are reproducible) and can be seeded with the set of
names that are already taken.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class FreshSupply:
    """Generate fresh string names of the form ``<prefix><counter>``.

    The supply never emits a name contained in its ``reserved`` set, and it
    never emits the same name twice.

    Parameters
    ----------
    prefix:
        Prefix used for generated names (default ``"n"``, for *null*).
    reserved:
        Names that must never be produced (typically the labels of every
        value already occurring in the instance being chased).
    start:
        First counter value to try.
    """

    def __init__(
        self,
        prefix: str = "n",
        reserved: Iterable[str] = (),
        start: int = 0,
    ) -> None:
        self._prefix = prefix
        self._reserved = set(reserved)
        self._counter = start

    @property
    def prefix(self) -> str:
        """The prefix used for every generated name."""
        return self._prefix

    def reserve(self, names: Iterable[str]) -> None:
        """Mark additional ``names`` as taken."""
        self._reserved.update(names)

    def next(self) -> str:
        """Return the next unused name and mark it as taken."""
        while True:
            candidate = f"{self._prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._reserved:
                self._reserved.add(candidate)
                return candidate

    def take(self, count: int) -> list[str]:
        """Return ``count`` fresh names."""
        return [self.next() for _ in range(count)]

    def snapshot(self) -> dict:
        """A JSON-serializable snapshot (inverse of :meth:`from_snapshot`).

        The chase checkpoint log persists this alongside the tableau so a
        resumed run hands out exactly the fresh names the uninterrupted run
        would have -- the counter only ever moves forward, so a restored
        supply can never re-emit a name the original already produced.
        """
        return {
            "prefix": self._prefix,
            "counter": self._counter,
            "reserved": sorted(self._reserved),
        }

    @classmethod
    def from_snapshot(cls, payload: dict) -> "FreshSupply":
        """Rebuild a supply from :meth:`snapshot` output."""
        return cls(
            prefix=payload["prefix"],
            reserved=payload["reserved"],
            start=payload["counter"],
        )

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FreshSupply(prefix={self._prefix!r}, next={self._counter})"
