"""Instance builders and random workload generators.

Benchmarks and property tests need streams of relations with controllable
size and structure.  The generators here are deterministic given a seed, so
benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.model.attributes import Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import typed, untyped
from repro.util.errors import SchemaError


def untyped_relation_from_table(
    universe: Universe, table: Sequence[Sequence[str]]
) -> Relation:
    """Convenience wrapper matching the paper's untyped tuple notation."""
    return Relation.untyped(universe, table)


def typed_relation_from_table(
    universe: Universe, table: Sequence[Sequence[str]]
) -> Relation:
    """Convenience wrapper matching the paper's typed tuple notation."""
    return Relation.typed(universe, table)


def random_untyped_relation(
    universe: Universe,
    rows: int,
    domain_size: int,
    seed: int = 0,
    value_prefix: str = "v",
) -> Relation:
    """A random untyped relation over ``universe``.

    Values are drawn uniformly from a shared pool of ``domain_size`` symbols;
    the same symbol may appear in several columns, exercising the untyped
    regime of Section 2.4.
    """
    if rows < 1:
        raise SchemaError("a relation must have at least one row")
    if domain_size < 1:
        raise SchemaError("domain_size must be positive")
    rng = random.Random(seed)
    pool = [untyped(f"{value_prefix}{i}") for i in range(domain_size)]
    built = set()
    attrs = universe.attributes
    attempts = 0
    while len(built) < rows and attempts < rows * 20:
        attempts += 1
        built.add(Row({a: rng.choice(pool) for a in attrs}))
    return Relation(universe, built)


def random_typed_relation(
    universe: Universe,
    rows: int,
    domain_size: int,
    seed: int = 0,
) -> Relation:
    """A random typed relation: each column draws from its own disjoint pool."""
    if rows < 1:
        raise SchemaError("a relation must have at least one row")
    if domain_size < 1:
        raise SchemaError("domain_size must be positive")
    rng = random.Random(seed)
    pools = {
        attr: [typed(f"{attr.name.lower()}{i}", attr) for i in range(domain_size)]
        for attr in universe.attributes
    }
    built = set()
    attempts = 0
    while len(built) < rows and attempts < rows * 20:
        attempts += 1
        built.add(Row({a: rng.choice(pools[a]) for a in universe.attributes}))
    return Relation(universe, built)


def functional_relation(
    universe: Universe,
    determinant: Sequence[str],
    rows: int,
    domain_size: int,
    seed: int = 0,
) -> Relation:
    """A random typed relation guaranteed to satisfy ``determinant -> U``.

    Useful for benchmarking satisfaction checks on instances known to satisfy
    the functional dependencies of Lemma 1.
    """
    rng = random.Random(seed)
    base = random_typed_relation(universe, rows, domain_size, seed)
    det = universe.subset(determinant)
    chosen: dict[tuple, Row] = {}
    for row in base.sorted_rows():
        key = tuple(row[a] for a in det)
        if key not in chosen:
            chosen[key] = row
    picked = list(chosen.values())
    rng.shuffle(picked)
    return Relation(universe, picked)


def untyped_abc_relation(
    rows: int, domain_size: int, seed: int = 0
) -> Relation:
    """A random relation over the paper's untyped universe ``U' = A'B'C'``."""
    from repro.core.untyped import UNTYPED_UNIVERSE

    return random_untyped_relation(UNTYPED_UNIVERSE, rows, domain_size, seed)


def grid_relation(
    universe: Universe, side: int, typed_values_: bool = True
) -> Relation:
    """A |U|-dimensional "grid" relation of ``side ** |U|`` rows.

    Every combination of per-column values ``0 .. side-1`` appears, which is
    the worst case for homomorphism search (maximal fan-out per column) and a
    useful stress workload for the chase benchmarks.
    """
    if side < 1:
        raise SchemaError("side must be positive")
    attrs = universe.attributes
    rows: list[Row] = []

    def build(prefix: dict, remaining: tuple) -> None:
        if not remaining:
            rows.append(Row(dict(prefix)))
            return
        attr, rest = remaining[0], remaining[1:]
        for i in range(side):
            if typed_values_:
                prefix[attr] = typed(f"{attr.name.lower()}{i}", attr)
            else:
                prefix[attr] = untyped(f"v{i}")
            build(prefix, rest)
        del prefix[attr]

    build({}, tuple(attrs))
    return Relation(universe, rows)


def two_row_template(universe: Universe, agree_on: Sequence[str]) -> Relation:
    """The canonical two-row typed tableau agreeing exactly on ``agree_on``.

    This is the antecedent of every functional and multivalued dependency:
    two rows sharing the ``agree_on`` columns and differing everywhere else.
    """
    agree = set(universe.subset(agree_on))
    first = {}
    second = {}
    for attr in universe.attributes:
        if attr in agree:
            shared = typed(f"{attr.name.lower()}", attr)
            first[attr] = shared
            second[attr] = shared
        else:
            first[attr] = typed(f"{attr.name.lower()}1", attr)
            second[attr] = typed(f"{attr.name.lower()}2", attr)
    return Relation(universe, [Row(first), Row(second)])


def relation_with_violation(
    universe: Universe,
    determinant: Sequence[str],
    dependent: str,
    seed: int = 0,
    extra_rows: int = 3,
    domain_size: Optional[int] = None,
) -> Relation:
    """A typed relation that violates the fd ``determinant -> dependent``.

    The relation contains two rows agreeing on the determinant but differing
    on the dependent attribute, plus ``extra_rows`` random rows.
    """
    domain_size = domain_size or max(extra_rows, 3)
    base = random_typed_relation(universe, max(extra_rows, 1), domain_size, seed)
    violating = two_row_template(universe, determinant)
    dep = universe.subset([dependent])[0]
    pair = violating.sorted_rows()
    first, second = pair[0], pair[1]
    if first[dep] == second[dep]:
        second = second.replace({dep: typed(f"{dep.name.lower()}x", dep)})
    return base.with_rows([first, second])
