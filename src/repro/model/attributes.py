"""Attributes and universes (Section 2.1 of the paper).

Attributes are symbols taken from a finite set called the *universe*.  The
paper writes ``XY`` for the union of attribute sets and ``X̄`` for the
complement of ``X`` in the universe; :class:`Universe` provides both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Union

from repro.util.errors import SchemaError

AttributeLike = Union["Attribute", str]


@dataclass(frozen=True, order=True)
class Attribute:
    """A single attribute (column name).

    Attributes compare and hash by name only, so ``Attribute("A")`` obtained
    from different universes is the same attribute, exactly as in the paper
    where attributes are just symbols.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be a non-empty string")

    def __str__(self) -> str:
        return self.name

    def indexed(self, index: int) -> "Attribute":
        """Return the attribute ``<name>_<index>``.

        Section 6 of the paper blows the universe ``U`` up into
        ``Û = {A_i : A in U, 0 <= i <= n}``; this helper builds those
        indexed attribute names.
        """
        return Attribute(f"{self.name}_{index}")


def as_attribute(value: AttributeLike) -> Attribute:
    """Coerce a string or :class:`Attribute` to an :class:`Attribute`."""
    if isinstance(value, Attribute):
        return value
    if isinstance(value, str):
        return Attribute(value)
    raise SchemaError(f"cannot interpret {value!r} as an attribute")


class Universe:
    """An ordered, duplicate-free finite set of attributes.

    The ordering is only used for display and for deterministic iteration; set
    operations (union, complement, subset tests) treat a universe as a set.
    """

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[AttributeLike]) -> None:
        attrs = [as_attribute(a) for a in attributes]
        seen: set[Attribute] = set()
        unique: list[Attribute] = []
        for attr in attrs:
            if attr in seen:
                raise SchemaError(f"duplicate attribute {attr} in universe")
            seen.add(attr)
            unique.append(attr)
        if not unique:
            raise SchemaError("a universe must contain at least one attribute")
        self._attributes: tuple[Attribute, ...] = tuple(unique)
        self._index = {attr: i for i, attr in enumerate(self._attributes)}

    @classmethod
    def from_names(cls, names: str) -> "Universe":
        """Build a universe from a string of single-letter attribute names.

        ``Universe.from_names("ABCDEF")`` is the paper's typed universe
        ``U = ABCDEF``.
        """
        return cls(list(names))

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes of the universe, in declaration order."""
        return self._attributes

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, (Attribute, str)):
            return as_attribute(item) in self._index
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Universe):
            return NotImplemented
        return set(self._attributes) == set(other._attributes)

    def __hash__(self) -> int:
        return hash(frozenset(self._attributes))

    def __repr__(self) -> str:
        return f"Universe({''.join(a.name for a in self._attributes)!r})"

    def index_of(self, attribute: AttributeLike) -> int:
        """Position of ``attribute`` in the declaration order."""
        attr = as_attribute(attribute)
        try:
            return self._index[attr]
        except KeyError as exc:
            raise SchemaError(f"{attr} is not in universe {self!r}") from exc

    def subset(self, attributes: Iterable[AttributeLike]) -> tuple[Attribute, ...]:
        """Validate that ``attributes`` all belong to the universe.

        Returns the attributes ordered by their position in the universe,
        which keeps projections and renderings deterministic.
        """
        attrs = {as_attribute(a) for a in attributes}
        for attr in attrs:
            if attr not in self._index:
                raise SchemaError(f"{attr} is not in universe {self!r}")
        return tuple(sorted(attrs, key=self.index_of))

    def complement(self, attributes: Iterable[AttributeLike]) -> tuple[Attribute, ...]:
        """The complement X̄ of an attribute set X in this universe."""
        excluded = {as_attribute(a) for a in attributes}
        for attr in excluded:
            if attr not in self._index:
                raise SchemaError(f"{attr} is not in universe {self!r}")
        return tuple(a for a in self._attributes if a not in excluded)

    def union(self, other: "Universe") -> "Universe":
        """The union of two universes, preserving this universe's order."""
        merged = list(self._attributes)
        merged.extend(a for a in other.attributes if a not in self._index)
        return Universe(merged)

    def restricted(self, attributes: Iterable[AttributeLike]) -> "Universe":
        """A universe containing only the given attributes (in this order)."""
        return Universe(self.subset(attributes))

    def is_superset_of(self, attributes: Iterable[AttributeLike]) -> bool:
        """Whether every attribute in ``attributes`` belongs to the universe."""
        return all(as_attribute(a) in self._index for a in attributes)

    def blown_up(self, levels: int) -> "Universe":
        """The Section 6 universe ``Û = {A_i : A in U, 0 <= i <= levels}``.

        Attributes are ordered ``A_0 ... A_n B_0 ... B_n ...`` following the
        base universe's order, matching Example 3's column layout.
        """
        if levels < 0:
            raise SchemaError("levels must be non-negative")
        attrs: list[Attribute] = []
        for base in self._attributes:
            attrs.extend(base.indexed(i) for i in range(levels + 1))
        return Universe(attrs)


def attribute_set_name(attributes: Sequence[Attribute]) -> str:
    """Render an attribute set in the paper's concatenated style, e.g. ``ABC``."""
    return "".join(a.name for a in attributes)
