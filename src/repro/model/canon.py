"""Canonical forms for implication problems (renaming-invariant identity).

Implication of dependencies never looks at names: the paper's semantics is
stated entirely in terms of the *pattern* of equalities between tableau
cells, so ``{A -> B} |= A ->> B`` and ``{C -> D} |= C ->> D`` are the same
question.  This module computes a canonical form of an
:class:`~repro.implication.problem.ImplicationProblem` such that any two
problems related by a bijective renaming of attributes and (per-dependency)
values share one :func:`canonical_key` digest -- the key the caching layers
in :mod:`repro.api` use to make isomorphic queries hit one cache entry.

The algorithm is individualization-refinement, the standard scheme for
canonical graph labeling, specialised to the two-sorted structure of a
dependency set:

* **attributes** are global: one bijection renames them across the whole
  problem (mvd complements, fd closures and pjd components all read the
  same universe), so attributes are refined jointly over every dependency;
* **tableau values** are bound variables local to each td/egd (two
  dependencies never share a variable scope), so values are canonicalized
  per dependency once a global attribute order is fixed.

Refinement partitions elements by iterated signatures (tag, position and
co-occurrence profiles) to a fixpoint; remaining symmetry is broken by
individualizing each member of the smallest non-singleton class in turn and
taking the lexicographically least resulting encoding.  Problems are tiny
(a handful of dependencies over single-letter universes), so the search is
cheap; a hard leaf cap turns pathological symmetric blow-ups into a
:class:`CanonicalizationError`, which callers treat as "fall back to the
syntactic key" rather than an answer-changing failure.

The module also provides the deterministic *syntactic* counterparts
(:func:`syntactic_encoding` / :func:`syntactic_key`): a stable string form
of the problem exactly as written, injective with respect to dependency
equality, which replaces the old tuple-of-objects ``problem_key`` so that
cache keys are stable strings usable by process-shared stores.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.dependencies.base import Dependency
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.pjd import JoinDependency, ProjectedJoinDependency
from repro.dependencies.td import TemplateDependency
from repro.implication.problem import ImplicationProblem
from repro.model.attributes import Attribute, AttributeLike, Universe, as_attribute
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import ReproError


class CanonicalizationError(ReproError):
    """The problem has no computable canonical form.

    Raised for dependency classes this module does not know how to encode
    and when symmetry breaking exceeds the search budget.  Callers fall
    back to syntactic identity -- correctness never depends on the
    canonical form existing, only cache sharing does.
    """


#: Cap on discrete colorings explored while breaking attribute symmetry
#: (and, separately, per-dependency value symmetry).  Real problems need a
#: handful; a fully symmetric blow-up hits the cap and falls back.
_MAX_LEAVES = 4096


def _sorted(items) -> tuple:
    """A deterministic total order over heterogeneous encodings.

    ``repr`` ordering is used everywhere instead of native comparison
    because encodings mix ints, strings and ``None`` (value tags).
    """
    return tuple(sorted(items, key=repr))


# ---------------------------------------------------------------------------
# Structural facts: one uniform view of every supported dependency class.
# ---------------------------------------------------------------------------


class _Facts:
    """The renaming-relevant structure of one dependency."""

    __slots__ = (
        "kind",
        "is_conclusion",
        "attrs",
        "attr_sets",
        "rows",
        "conclusion",
        "equality",
    )

    def __init__(
        self,
        kind: str,
        is_conclusion: bool,
        attrs: frozenset,
        attr_sets: Tuple[Tuple[str, frozenset], ...] = (),
        rows: Tuple[Dict[Attribute, Value], ...] = (),
        conclusion: Optional[Dict[Attribute, Value]] = None,
        equality: Optional[Tuple[Value, Value]] = None,
    ) -> None:
        self.kind = kind
        self.is_conclusion = is_conclusion
        self.attrs = attrs
        self.attr_sets = attr_sets
        self.rows = rows
        self.conclusion = conclusion
        self.equality = equality

    @property
    def tableau(self) -> bool:
        return bool(self.rows)

    def values(self):
        """Every value occurring in the dependency's tableau (if any)."""
        seen = {}
        for row in self.rows:
            for value in row.values():
                seen[value] = True
        if self.conclusion is not None:
            for value in self.conclusion.values():
                seen[value] = True
        if self.equality is not None:
            for value in self.equality:
                seen[value] = True
        return list(seen)


def _extract_facts(dependency: Dependency, is_conclusion: bool) -> _Facts:
    if isinstance(dependency, FunctionalDependency):
        det = frozenset(dependency.determinant)
        dep = frozenset(dependency.dependent)
        return _Facts(
            "fd",
            is_conclusion,
            attrs=det | dep,
            attr_sets=(("det", det), ("dep", dep)),
        )
    if isinstance(dependency, MultivaluedDependency):
        det = frozenset(dependency.determinant)
        dep = frozenset(dependency.dependent)
        return _Facts(
            "mvd",
            is_conclusion,
            attrs=det | dep,
            attr_sets=(("det", det), ("dep", dep)),
        )
    if isinstance(dependency, ProjectedJoinDependency):
        # JoinDependency is a pjd with X = R and compares equal to one, so
        # both encode as "pjd" (distinguishing them would split equal
        # problems across cache entries).
        comps = tuple(("comp", frozenset(c)) for c in dependency.components)
        proj = frozenset(dependency.projection)
        return _Facts(
            "pjd",
            is_conclusion,
            attrs=frozenset().union(proj, *(c for _, c in comps)),
            attr_sets=comps + (("proj", proj),),
        )
    if isinstance(dependency, TemplateDependency):
        rows = tuple(dict(row.items()) for row in dependency.body.sorted_rows())
        return _Facts(
            "td",
            is_conclusion,
            attrs=frozenset(dependency.universe.attributes),
            rows=rows,
            conclusion=dict(dependency.conclusion.items()),
        )
    if isinstance(dependency, EqualityGeneratingDependency):
        rows = tuple(dict(row.items()) for row in dependency.body.sorted_rows())
        return _Facts(
            "egd",
            is_conclusion,
            attrs=frozenset(dependency.body.universe.attributes),
            rows=rows,
            equality=(dependency.left, dependency.right),
        )
    raise CanonicalizationError(
        f"no canonical form for dependency class {type(dependency).__name__}"
    )


# ---------------------------------------------------------------------------
# Joint color refinement over attributes, dependencies, rows and values.
# ---------------------------------------------------------------------------


class _Coloring:
    """Current partition of every element family, as integer colors."""

    __slots__ = ("acolor", "dcolor", "rcolor", "vcolor")

    def __init__(self, acolor, dcolor, rcolor, vcolor) -> None:
        self.acolor = acolor  # Attribute -> int
        self.dcolor = dcolor  # fact index -> int
        self.rcolor = rcolor  # (fact index, row index) -> int; -1 = conclusion row
        self.vcolor = vcolor  # (fact index, Value) -> int

    def clone(self) -> "_Coloring":
        return _Coloring(
            dict(self.acolor), list(self.dcolor), dict(self.rcolor), dict(self.vcolor)
        )


def _initial_coloring(facts: Sequence[_Facts], attrs: Sequence[Attribute]) -> _Coloring:
    acolor = {a: 0 for a in attrs}
    dcolor = []
    rcolor: Dict[Tuple[int, int], int] = {}
    vcolor: Dict[Tuple[int, Value], int] = {}
    dseeds = _sorted({(f.kind, f.is_conclusion) for f in facts})
    for fi, fact in enumerate(facts):
        dcolor.append(dseeds.index((fact.kind, fact.is_conclusion)))
        if not fact.tableau:
            continue
        body_values = set()
        for row in fact.rows:
            body_values.update(row.values())
        in_equality = set(fact.equality or ())
        conclusion_values = set((fact.conclusion or {}).values())
        seeds = []
        for value in fact.values():
            seeds.append(
                (
                    value.tag is None,
                    value in in_equality,
                    value in conclusion_values,
                    value in body_values,
                )
            )
        distinct = _sorted(set(seeds))
        for value, seed in zip(fact.values(), seeds):
            vcolor[(fi, value)] = distinct.index(seed)
        for ri in range(len(fact.rows)):
            rcolor[(fi, ri)] = 0
        if fact.conclusion is not None:
            rcolor[(fi, -1)] = 1
    return _Coloring(acolor, dcolor, rcolor, vcolor)


def _tag_attr(value: Value, by_name: Mapping[str, Attribute]) -> Optional[Attribute]:
    if value.tag is None:
        return None
    return by_name.get(value.tag)


def _refine(facts: Sequence[_Facts], coloring: _Coloring, by_name) -> None:
    """Iterate signature-based splitting of all four families to a fixpoint."""
    while True:
        # Row signatures: owning dependency, conclusion-row flag, and the
        # multiset of (attribute color, value color) cells.
        rsigs = {}
        for fi, fact in enumerate(facts):
            if not fact.tableau:
                continue
            indexed = list(enumerate(fact.rows))
            if fact.conclusion is not None:
                indexed.append((-1, fact.conclusion))
            for ri, row in indexed:
                cells = _sorted(
                    (coloring.acolor[a], coloring.vcolor[(fi, v)])
                    for a, v in row.items()
                )
                rsigs[(fi, ri)] = (
                    coloring.rcolor[(fi, ri)],
                    coloring.dcolor[fi],
                    ri == -1,
                    cells,
                )
        # Value signatures: tag column's color and the multiset of
        # (row color, attribute color) occurrences.
        vsigs = {}
        for fi, fact in enumerate(facts):
            if not fact.tableau:
                continue
            occurrences: Dict[Value, list] = {v: [] for v in fact.values()}
            indexed = list(enumerate(fact.rows))
            if fact.conclusion is not None:
                indexed.append((-1, fact.conclusion))
            for ri, row in indexed:
                for a, v in row.items():
                    occurrences[v].append(
                        (coloring.rcolor[(fi, ri)], coloring.acolor[a])
                    )
            for value in fact.values():
                tag = _tag_attr(value, by_name)
                vsigs[(fi, value)] = (
                    coloring.vcolor[(fi, value)],
                    coloring.dcolor[fi],
                    None if tag is None else coloring.acolor[tag],
                    _sorted(occurrences[value]),
                )
        # Attribute signatures: the multiset over dependencies of this
        # attribute's role profile there (set memberships for the arrow and
        # join classes, column profile for the tableau classes).
        asigs = {}
        for attr in coloring.acolor:
            profile = []
            for fi, fact in enumerate(facts):
                if attr not in fact.attrs:
                    continue
                if fact.tableau:
                    column = _sorted(
                        coloring.vcolor[(fi, row[attr])]
                        for row in fact.rows
                        if attr in row
                    )
                    conclusion_cell = (
                        None
                        if fact.conclusion is None or attr not in fact.conclusion
                        else coloring.vcolor[(fi, fact.conclusion[attr])]
                    )
                    profile.append(
                        (coloring.dcolor[fi], column, conclusion_cell)
                    )
                else:
                    roles = _sorted(
                        role for role, members in fact.attr_sets if attr in members
                    )
                    profile.append((coloring.dcolor[fi], roles))
            asigs[attr] = (coloring.acolor[attr], _sorted(profile))
        # Dependency signatures: structure summarised through current colors.
        dsigs = []
        for fi, fact in enumerate(facts):
            if fact.tableau:
                body = _sorted(
                    coloring.rcolor[(fi, ri)] for ri in range(len(fact.rows))
                )
                if fact.equality is not None:
                    head = _sorted(
                        coloring.vcolor[(fi, v)] for v in fact.equality
                    )
                else:
                    head = coloring.rcolor[(fi, -1)]
                summary = (body, head)
            else:
                summary = _sorted(
                    (role, _sorted(coloring.acolor[a] for a in members))
                    for role, members in fact.attr_sets
                )
            dsigs.append(
                (coloring.dcolor[fi], fact.kind, fact.is_conclusion, summary)
            )

        changed = False
        distinct = _sorted(set(rsigs.values()))
        new_rcolor = {key: distinct.index(sig) for key, sig in rsigs.items()}
        if _partition(new_rcolor) != _partition(coloring.rcolor):
            changed = True
        coloring.rcolor = new_rcolor
        distinct = _sorted(set(vsigs.values()))
        new_vcolor = {key: distinct.index(sig) for key, sig in vsigs.items()}
        if _partition(new_vcolor) != _partition(coloring.vcolor):
            changed = True
        coloring.vcolor = new_vcolor
        distinct = _sorted(set(asigs.values()))
        new_acolor = {key: distinct.index(sig) for key, sig in asigs.items()}
        if _partition(new_acolor) != _partition(coloring.acolor):
            changed = True
        coloring.acolor = new_acolor
        distinct = _sorted(set(dsigs))
        new_dcolor = [distinct.index(sig) for sig in dsigs]
        if _partition(dict(enumerate(new_dcolor))) != _partition(
            dict(enumerate(coloring.dcolor))
        ):
            changed = True
        coloring.dcolor = new_dcolor
        if not changed:
            return


def _partition(colors: Mapping) -> frozenset:
    groups: Dict[int, list] = {}
    for element, color in colors.items():
        groups.setdefault(color, []).append(element)
    return frozenset(frozenset(members) for members in groups.values())


# ---------------------------------------------------------------------------
# Per-dependency tableau canonicalization (given a global attribute order).
# ---------------------------------------------------------------------------


def _canonical_tableau(
    fact: _Facts, attr_index: Mapping[Attribute, int], budget: List[int]
) -> tuple:
    """The least encoding of a td/egd under value bijections.

    ``attr_index`` fixes the global attribute order, so only the (bound,
    per-dependency) values remain to canonicalize: refine by column/row
    profile, individualize the smallest class until discrete, and take the
    minimum encoding over all branches.
    """
    values = fact.values()
    rows = fact.rows
    in_equality = set(fact.equality or ())
    conclusion = fact.conclusion
    body_values = set()
    for row in rows:
        body_values.update(row.values())

    def tag_key(value: Value):
        # A tag naming an attribute outside the problem's universe is kept
        # verbatim: renamings only move universe attributes, so the raw
        # string is still invariant.
        if value.tag is None:
            return None
        return attr_index.get(Attribute(value.tag), value.tag)

    seeds = {}
    for value in values:
        tag = tag_key(value)
        seeds[value] = (
            tag,
            value in in_equality,
            conclusion is not None and value in set(conclusion.values()),
            value in body_values,
        )
    distinct = _sorted(set(seeds.values()))
    vcolor = {value: distinct.index(seeds[value]) for value in values}

    indexed_rows = list(enumerate(rows))
    if conclusion is not None:
        indexed_rows.append((-1, conclusion))

    def refine(vcolor: Dict[Value, int]) -> Dict[Value, int]:
        rcolor = {ri: int(ri == -1) for ri, _ in indexed_rows}
        while True:
            rsigs = {}
            for ri, row in indexed_rows:
                cells = tuple(
                    vcolor[row[a]]
                    for a in sorted(row, key=lambda a: attr_index[a])
                )
                rsigs[ri] = (rcolor[ri], ri == -1, cells)
            vsigs = {}
            for value in values:
                occ = []
                for ri, row in indexed_rows:
                    for a, v in row.items():
                        if v == value:
                            occ.append((rcolor[ri], attr_index[a]))
                vsigs[value] = (vcolor[value], _sorted(occ))
            distinct_r = _sorted(set(rsigs.values()))
            new_rcolor = {ri: distinct_r.index(sig) for ri, sig in rsigs.items()}
            distinct_v = _sorted(set(vsigs.values()))
            new_vcolor = {v: distinct_v.index(sig) for v, sig in vsigs.items()}
            if _partition(new_vcolor) == _partition(vcolor) and _partition(
                new_rcolor
            ) == _partition(rcolor):
                return new_vcolor
            vcolor, rcolor = new_vcolor, new_rcolor

    best: List[Optional[tuple]] = [None]

    def encode(vcolor: Dict[Value, int]) -> tuple:
        label = {v: vcolor[v] for v in values}
        tags = _sorted((label[v], tag_key(v)) for v in values)
        body = _sorted(
            tuple(
                (attr_index[a], label[row[a]])
                for a in sorted(row, key=lambda a: attr_index[a])
            )
            for row in rows
        )
        if fact.equality is not None:
            head: object = _sorted(label[v] for v in fact.equality)
        else:
            assert conclusion is not None
            head = tuple(
                (attr_index[a], label[conclusion[a]])
                for a in sorted(conclusion, key=lambda a: attr_index[a])
            )
        return (fact.kind, tags, body, head)

    def explore(vcolor: Dict[Value, int]) -> None:
        groups: Dict[int, list] = {}
        for value in values:
            groups.setdefault(vcolor[value], []).append(value)
        non_singletons = [g for g in groups.values() if len(g) > 1]
        if not non_singletons:
            budget[0] -= 1
            if budget[0] < 0:
                raise CanonicalizationError(
                    "tableau symmetry exceeded the canonicalization budget"
                )
            encoding = encode(vcolor)
            if best[0] is None or repr(encoding) < repr(best[0]):
                best[0] = encoding
            return
        target = min(non_singletons, key=lambda g: (len(g), vcolor[g[0]]))
        fresh = max(vcolor.values()) + 1
        for value in sorted(target, key=repr):
            branched = dict(vcolor)
            branched[value] = fresh
            explore(refine(branched))

    explore(refine(vcolor))
    assert best[0] is not None
    return best[0]


def _encode_problem(
    facts: Sequence[_Facts],
    coloring: _Coloring,
    attrs: Sequence[Attribute],
    budget: List[int],
) -> tuple:
    """Encode the whole problem once the attribute partition is discrete."""
    order = sorted(attrs, key=lambda a: coloring.acolor[a])
    attr_index = {a: i for i, a in enumerate(order)}
    encodings = []
    for fact in facts:
        if fact.tableau:
            encoding = _canonical_tableau(fact, attr_index, budget)
        elif fact.kind == "pjd":
            comps = _sorted(
                _sorted(attr_index[a] for a in members)
                for role, members in fact.attr_sets
                if role == "comp"
            )
            proj = _sorted(
                attr_index[a]
                for role, members in fact.attr_sets
                if role == "proj"
                for a in members
            )
            encoding = ("pjd", comps, proj)
        else:
            det = next(m for role, m in fact.attr_sets if role == "det")
            dep = next(m for role, m in fact.attr_sets if role == "dep")
            encoding = (
                fact.kind,
                _sorted(attr_index[a] for a in det),
                _sorted(attr_index[a] for a in dep),
            )
        encodings.append(encoding)
    premises = _sorted(
        enc for enc, fact in zip(encodings, facts) if not fact.is_conclusion
    )
    conclusion = next(
        enc for enc, fact in zip(encodings, facts) if fact.is_conclusion
    )
    return ("problem", premises, conclusion)


def canonical_encoding(problem: ImplicationProblem) -> tuple:
    """The canonical (renaming-invariant) structure of a problem.

    Equal for any two problems related by a bijection of attributes and a
    per-dependency bijection of tableau values; also invariant under
    premise reordering and duplicate premises collapse *not* applied (the
    premise multiset is preserved).  Raises
    :class:`CanonicalizationError` for unsupported dependency classes and
    pathological symmetry.
    """
    facts = [_extract_facts(d, False) for d in problem.premises]
    facts.append(_extract_facts(problem.conclusion, True))
    attrs = sorted({a for f in facts for a in f.attrs}, key=lambda a: a.name)
    by_name = {a.name: a for a in attrs}
    coloring = _initial_coloring(facts, attrs)
    _refine(facts, coloring, by_name)

    best: List[Optional[tuple]] = [None]
    budget = [_MAX_LEAVES]

    def explore(coloring: _Coloring) -> None:
        groups: Dict[int, list] = {}
        for attr in attrs:
            groups.setdefault(coloring.acolor[attr], []).append(attr)
        non_singletons = [g for g in groups.values() if len(g) > 1]
        if not non_singletons:
            budget[0] -= 1
            if budget[0] < 0:
                raise CanonicalizationError(
                    "attribute symmetry exceeded the canonicalization budget"
                )
            encoding = _encode_problem(facts, coloring, attrs, budget)
            if best[0] is None or repr(encoding) < repr(best[0]):
                best[0] = encoding
            return
        target = min(
            non_singletons, key=lambda g: (len(g), coloring.acolor[g[0]])
        )
        fresh = max(coloring.acolor.values()) + 1
        for attr in sorted(target, key=lambda a: a.name):
            branched = coloring.clone()
            branched.acolor[attr] = fresh
            _refine(facts, branched, by_name)
            explore(branched)

    explore(coloring)
    assert best[0] is not None
    return best[0] + (problem.finite,)


def canonical_key(problem: ImplicationProblem, context: tuple = ()) -> str:
    """A stable digest of the canonical form (prefix ``c:``).

    ``context`` scopes the key to a solving context (universe and budgets):
    two solvers with different configurations must not share cache entries
    even through a process-shared store.
    """
    encoding = canonical_encoding(problem)
    payload = repr((encoding, context)).encode("utf-8")
    return "c:" + hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# Deterministic syntactic encoding (the legacy key, as a stable string).
# ---------------------------------------------------------------------------


def _syntactic_dependency(dependency: Dependency) -> tuple:
    if isinstance(dependency, FunctionalDependency):
        return (
            "fd",
            tuple(sorted(a.name for a in dependency.determinant)),
            tuple(sorted(a.name for a in dependency.dependent)),
        )
    if isinstance(dependency, MultivaluedDependency):
        return (
            "mvd",
            tuple(sorted(a.name for a in dependency.determinant)),
            tuple(sorted(a.name for a in dependency.dependent)),
        )
    if isinstance(dependency, ProjectedJoinDependency):
        # Component order participates in pjd equality, so it is preserved.
        return (
            "pjd",
            tuple(tuple(sorted(a.name for a in c)) for c in dependency.components),
            tuple(sorted(a.name for a in dependency.projection)),
        )
    if isinstance(dependency, TemplateDependency):
        return (
            "td",
            _syntactic_relation(dependency.body),
            _syntactic_row(dependency.conclusion),
        )
    if isinstance(dependency, EqualityGeneratingDependency):
        return (
            "egd",
            _syntactic_relation(dependency.body),
            _sorted(
                ((v.name, v.tag) for v in (dependency.left, dependency.right))
            ),
        )
    raise CanonicalizationError(
        f"no syntactic encoding for dependency class {type(dependency).__name__}"
    )


def _syntactic_row(row: Union[Row, Mapping[Attribute, Value]]) -> tuple:
    items = row.items()
    return tuple(
        (a.name, v.name, v.tag) for a, v in sorted(items, key=lambda av: av[0].name)
    )


def _syntactic_relation(relation: Relation) -> tuple:
    universe = tuple(sorted(a.name for a in relation.universe))
    rows = _sorted(_syntactic_row(row) for row in relation.rows)
    return (universe, rows)


def syntactic_encoding(problem: ImplicationProblem) -> tuple:
    """A deterministic structure equal iff the problems are ``==``.

    Injective with respect to dependency equality (display names and egd
    orientation are excluded, exactly as ``Dependency.__eq__`` excludes
    them) and sensitive to premise order, matching the legacy
    tuple-of-objects ``problem_key`` semantics one-for-one.
    """
    return (
        "problem",
        tuple(_syntactic_dependency(d) for d in problem.premises),
        _syntactic_dependency(problem.conclusion),
        problem.finite,
    )


def syntactic_key(problem: ImplicationProblem, context: tuple = ()) -> str:
    """A stable digest of the problem exactly as written (prefix ``s:``)."""
    encoding = syntactic_encoding(problem)
    payload = repr((encoding, context)).encode("utf-8")
    return "s:" + hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# Renaming helpers (used by the property tests and the benchmark workload).
# ---------------------------------------------------------------------------


def rename_dependency(
    dependency: Dependency,
    attr_map: Optional[Mapping[AttributeLike, AttributeLike]] = None,
    value_names: Optional[Mapping[str, str]] = None,
) -> Dependency:
    """Apply an attribute bijection and a value renaming to one dependency.

    ``attr_map`` maps old attributes (objects or names) to new ones;
    missing attributes stay put.  ``value_names`` maps value *names*; tags
    of typed values follow the attribute map automatically, so renamed
    typed tableaux stay typed.
    """
    translation = {
        as_attribute(old): as_attribute(new) for old, new in (attr_map or {}).items()
    }
    names = dict(value_names or {})

    def ren_attr(attr: Attribute) -> Attribute:
        return translation.get(attr, attr)

    def ren_value(value: Value) -> Value:
        name = names.get(value.name, value.name)
        tag = value.tag
        if tag is not None:
            tag = ren_attr(Attribute(tag)).name
        return Value(name, tag)

    def ren_row(row) -> Row:
        return Row({ren_attr(a): ren_value(v) for a, v in row.items()})

    def ren_relation(relation: Relation) -> Relation:
        universe = Universe([ren_attr(a) for a in relation.universe])
        return Relation(universe, (ren_row(row) for row in relation.rows))

    if isinstance(dependency, FunctionalDependency):
        return FunctionalDependency(
            [ren_attr(a) for a in dependency.determinant],
            [ren_attr(a) for a in dependency.dependent],
            name=dependency.name,
        )
    if isinstance(dependency, MultivaluedDependency):
        return MultivaluedDependency(
            [ren_attr(a) for a in dependency.determinant],
            [ren_attr(a) for a in dependency.dependent],
            name=dependency.name,
        )
    if isinstance(dependency, JoinDependency):
        return JoinDependency(
            [[ren_attr(a) for a in c] for c in dependency.components],
            name=dependency.name,
        )
    if isinstance(dependency, ProjectedJoinDependency):
        return ProjectedJoinDependency(
            [[ren_attr(a) for a in c] for c in dependency.components],
            projection=[ren_attr(a) for a in dependency.projection],
            name=dependency.name,
        )
    if isinstance(dependency, TemplateDependency):
        return TemplateDependency(
            ren_row(dependency.conclusion),
            ren_relation(dependency.body),
            name=dependency.name,
        )
    if isinstance(dependency, EqualityGeneratingDependency):
        return EqualityGeneratingDependency(
            ren_value(dependency.left),
            ren_value(dependency.right),
            ren_relation(dependency.body),
            name=dependency.name,
        )
    raise CanonicalizationError(
        f"cannot rename dependency class {type(dependency).__name__}"
    )


def rename_problem(
    problem: ImplicationProblem,
    attr_map: Optional[Mapping[AttributeLike, AttributeLike]] = None,
    value_names: Optional[Mapping[str, str]] = None,
) -> ImplicationProblem:
    """The image of a whole problem under one attribute/value renaming."""
    return ImplicationProblem.of(
        [rename_dependency(d, attr_map, value_names) for d in problem.premises],
        rename_dependency(problem.conclusion, attr_map, value_names),
        finite=problem.finite,
    )


__all__ = [
    "CanonicalizationError",
    "canonical_encoding",
    "canonical_key",
    "rename_dependency",
    "rename_problem",
    "syntactic_encoding",
    "syntactic_key",
]
