"""Relations (Section 2.1).

An X-relation is a non-empty set of X-values.  The library additionally
allows the empty relation (useful as an algebraic identity) but every
operation the paper relies on is implemented exactly as defined there:
projection ``I[Y]``, the value set ``VAL(I)``, and the typed/untyped
distinction of Section 2.4.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.model.attributes import Attribute, AttributeLike, Universe, as_attribute
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import SchemaError, TypingError


class Relation:
    """An immutable relation: a universe plus a finite set of rows over it.

    The paper allows infinite relations in the semantics of dependencies; the
    library only materialises finite ones (counterexamples, tableaux, chase
    states), which is all that any construction in the paper manipulates
    explicitly.
    """

    __slots__ = ("_universe", "_rows", "_hom_index")

    def __init__(self, universe: Universe, rows: Iterable[Row] = ()) -> None:
        self._universe = universe
        frozen = frozenset(rows)
        expected = set(universe.attributes)
        for row in frozen:
            if set(row.scheme) != expected:
                raise SchemaError(
                    f"row {row!r} is not over universe "
                    f"{''.join(a.name for a in universe)}"
                )
        self._rows: frozenset[Row] = frozen
        # Lazily-built (attribute, value) -> rows buckets for homomorphism
        # search (see repro.model.valuations.homomorphisms).  Never part of
        # the relation's value: relations are immutable, so the cache can
        # only ever describe exactly self._rows.
        self._hom_index = None

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_rows(cls, universe: Universe, rows: Iterable[Row]) -> "Relation":
        """Build a relation from pre-built rows."""
        return cls(universe, rows)

    @classmethod
    def _trusted(cls, universe: Universe, rows: frozenset[Row]) -> "Relation":
        """Internal constructor skipping per-row scheme validation.

        Only for rows already validated against the same universe (set
        algebra over existing relations, value substitution).  The public
        constructor stays validating; the chase applies thousands of
        single-row updates per run and must not re-validate the whole
        tableau each time.
        """
        relation = cls.__new__(cls)
        relation._universe = universe
        relation._rows = rows
        relation._hom_index = None
        return relation

    @classmethod
    def typed(
        cls, universe: Universe, table: Iterable[Sequence[Union[str, int]]]
    ) -> "Relation":
        """Build a typed relation from a table of value names in universe order."""
        return cls(universe, (Row.typed_over(universe, line) for line in table))

    @classmethod
    def untyped(
        cls, universe: Universe, table: Iterable[Sequence[Union[str, int]]]
    ) -> "Relation":
        """Build an untyped relation from a table of value names in universe order."""
        return cls(universe, (Row.untyped_over(universe, line) for line in table))

    # -- basic accessors ------------------------------------------------------

    @property
    def universe(self) -> Universe:
        """The attribute set the relation is over."""
        return self._universe

    @property
    def rows(self) -> frozenset[Row]:
        """The set of rows."""
        return self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._universe == other._universe and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._universe, self._rows))

    def __repr__(self) -> str:
        return (
            f"Relation({''.join(a.name for a in self._universe)}, "
            f"{len(self._rows)} rows)"
        )

    def __reduce__(self):
        # Pickle only the universe and rows: the homomorphism-index cache is
        # per-process derived state (and can dwarf the relation itself), so
        # shipping a relation to a shard worker must not drag it along.
        return (_rebuild_relation, (self._universe, self._rows))

    # -- paper operations -----------------------------------------------------

    def project(self, attributes: Iterable[AttributeLike]) -> "Relation":
        """The projection ``I[Y]`` onto the attribute set ``Y``."""
        attrs = self._universe.subset(attributes)
        sub_universe = Universe(attrs)
        return Relation(sub_universe, (row.restrict(attrs) for row in self._rows))

    def column(self, attribute: AttributeLike) -> frozenset[Value]:
        """``I[A]`` viewed as the set of A-values appearing in column A."""
        attr = as_attribute(attribute)
        if attr not in self._universe:
            raise SchemaError(f"{attr} is not in this relation's universe")
        return frozenset(row[attr] for row in self._rows)

    def values(self) -> frozenset[Value]:
        """``VAL(I)``: the set of all attribute values occurring in the relation."""
        collected: set[Value] = set()
        for row in self._rows:
            collected.update(row.values())
        return frozenset(collected)

    def rows_containing(
        self,
        value: Value,
        index: Optional[Mapping[Value, Iterable[Row]]] = None,
    ) -> tuple[Row, ...]:
        """The rows in which ``value`` occurs (in any column).

        Without ``index`` this is a full scan.  ``index`` is a value -> rows
        mapping maintained alongside the relation (the chase passes its
        :attr:`repro.chase.row_index.RowIndex.value_buckets`); with it the
        lookup costs O(|result|) -- each candidate is still membership-checked
        against the relation, so a slightly-stale index degrades to missing
        nothing that it lists, never to phantom rows.
        """
        if index is not None:
            bucket = index.get(value, ())
            return tuple(row for row in bucket if row in self._rows)
        return tuple(row for row in self._rows if value in row.values())

    def is_typed(self) -> bool:
        """Whether no value appears in two different columns.

        The library accepts two equivalent certificates of typedness: every
        value is tagged with its column's attribute, or (for untagged values)
        no value name is shared between two columns.
        """
        seen: dict[Value, Attribute] = {}
        for row in self._rows:
            for attr, value in row.items():
                if value.tag is not None and value.tag != attr.name:
                    return False
                previous = seen.get(value)
                if previous is not None and previous != attr:
                    return False
                seen[value] = attr
        return True

    def require_typed(self) -> "Relation":
        """Raise :class:`TypingError` unless the relation is typed."""
        if not self.is_typed():
            raise TypingError("relation is not typed: a value occurs in two columns")
        return self

    def is_untyped(self) -> bool:
        """Whether every value in the relation is untagged."""
        return all(value.tag is None for value in self.values())

    # -- construction algebra -------------------------------------------------

    def with_rows(self, rows: Iterable[Row]) -> "Relation":
        """A relation with the given rows added (new rows are validated)."""
        added = frozenset(rows)
        expected = set(self._universe.attributes)
        for row in added:
            if set(row.scheme) != expected:
                raise SchemaError(
                    f"row {row!r} is not over universe "
                    f"{''.join(a.name for a in self._universe)}"
                )
        return Relation._trusted(self._universe, self._rows | added)

    def without_rows(self, rows: Iterable[Row]) -> "Relation":
        """A relation with the given rows removed."""
        return Relation._trusted(self._universe, self._rows - frozenset(rows))

    def union(self, other: "Relation") -> "Relation":
        """Union of two relations over the same universe."""
        if other.universe != self._universe:
            raise SchemaError("cannot union relations over different universes")
        return Relation._trusted(self._universe, self._rows | other.rows)

    def intersection(self, other: "Relation") -> "Relation":
        """Intersection of two relations over the same universe."""
        if other.universe != self._universe:
            raise SchemaError("cannot intersect relations over different universes")
        return Relation._trusted(self._universe, self._rows & other.rows)

    def difference(self, other: "Relation") -> "Relation":
        """Difference of two relations over the same universe."""
        if other.universe != self._universe:
            raise SchemaError("cannot subtract relations over different universes")
        return Relation._trusted(self._universe, self._rows - other.rows)

    def is_subset_of(self, other: "Relation") -> bool:
        """Whether every row of this relation occurs in ``other``."""
        return self._rows <= other.rows

    def map_values(self, mapping: Callable[[Value], Value]) -> "Relation":
        """Apply a value-level function to every cell of the relation."""
        new_rows = []
        for row in self._rows:
            new_rows.append(Row({a: mapping(v) for a, v in row.items()}))
        return Relation._trusted(self._universe, frozenset(new_rows))

    def substitute_rows(
        self, removed: Iterable[Row], replacements: Iterable[Row]
    ) -> "Relation":
        """Swap a set of rows for their rewritten images in one pass.

        The egd step uses this instead of :meth:`map_values`: a merge touches
        only the rows containing the replaced value, so rebuilding (and
        re-validating) every row of the tableau per step would make merge
        cascades quadratic in tableau size.  Replacement rows must be over
        the same universe (they are images of existing rows).
        """
        return Relation._trusted(
            self._universe, (self._rows - frozenset(removed)) | frozenset(replacements)
        )

    def rename_attributes(
        self, renaming: Mapping[AttributeLike, AttributeLike]
    ) -> "Relation":
        """A copy of the relation with some attributes renamed.

        Values keep their tags, so renaming a typed relation's attributes
        yields an untagged-checking mismatch unless the values are retagged;
        this operation therefore also retags typed values to the new column
        name, preserving typedness.
        """
        translation = {
            as_attribute(old): as_attribute(new) for old, new in renaming.items()
        }
        new_attrs = [translation.get(a, a) for a in self._universe]
        new_universe = Universe(new_attrs)
        new_rows = []
        for row in self._rows:
            cells = {}
            for attr, value in row.items():
                target = translation.get(attr, attr)
                if value.tag is not None:
                    value = value.retagged(target)
                cells[target] = value
            new_rows.append(Row(cells))
        return Relation(new_universe, new_rows)

    def restrict_rows(self, predicate: Callable[[Row], bool]) -> "Relation":
        """The selection of rows satisfying ``predicate``."""
        return Relation(self._universe, (r for r in self._rows if predicate(r)))

    def sorted_rows(self) -> list[Row]:
        """Rows in a deterministic order (by rendered cell names)."""
        return sorted(
            self._rows,
            key=lambda row: tuple(v.name for v in row),
        )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the relation.

        Rows are listed deterministically (see :meth:`sorted_rows`); each cell
        is a ``{"name", "tag"}`` pair in universe column order, so typed and
        untyped relations round-trip faithfully through
        :meth:`from_dict`.
        """
        attrs = self._universe.attributes
        return {
            "universe": [a.name for a in attrs],
            "rows": [
                [{"name": row[a].name, "tag": row[a].tag} for a in attrs]
                for row in self.sorted_rows()
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Relation":
        """Rebuild a relation from :meth:`to_dict` output."""
        universe = Universe(payload["universe"])
        attrs = universe.attributes
        rows = []
        for cells in payload["rows"]:
            if len(cells) != len(attrs):
                raise SchemaError(
                    f"serialized row has {len(cells)} cells, expected {len(attrs)}"
                )
            rows.append(
                Row(
                    {
                        attr: Value(cell["name"], cell.get("tag"))
                        for attr, cell in zip(attrs, cells)
                    }
                )
            )
        return cls(universe, rows)


def _rebuild_relation(universe: Universe, rows: "frozenset[Row]") -> Relation:
    """Unpickling entry point: revalidation-free, cache-free reconstruction."""
    return Relation._trusted(universe, rows)
