"""Valuations and homomorphism search (Section 2.2).

A valuation is a partial mapping ``alpha: DOM(U) -> DOM(U)`` respecting the
typing discipline (an A-value must be mapped to an A-value).  Dependency
satisfaction quantifies over *all* valuations embedding the dependency's body
into a relation, so the work-horse of this module is
:func:`homomorphisms`, a backtracking search enumerating exactly those
valuations.  This is the same sub-problem every production chase engine
solves when it looks for "triggers".
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional

from repro.model.attributes import Attribute
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import TypingError


class Valuation:
    """An immutable partial mapping on domain values.

    The paper requires ``alpha(a) in DOM(A)`` whenever ``a in DOM(A)``; for
    tagged (typed) values the constructor enforces this.  Untagged values may
    map to anything.
    """

    __slots__ = ("_mapping",)

    def __init__(self, mapping: Mapping[Value, Value] | None = None) -> None:
        data: Dict[Value, Value] = dict(mapping or {})
        for source, target in data.items():
            _check_typed_pair(source, target)
        self._mapping = data

    # -- basic accessors ------------------------------------------------------

    def as_dict(self) -> dict[Value, Value]:
        """A plain dict copy of the mapping."""
        return dict(self._mapping)

    def domain(self) -> frozenset[Value]:
        """The set of values on which the valuation is defined."""
        return frozenset(self._mapping)

    def defined_on(self, value: Value) -> bool:
        """Whether the valuation is defined on ``value``."""
        return value in self._mapping

    def __call__(self, value: Value) -> Value:
        try:
            return self._mapping[value]
        except KeyError as exc:
            raise KeyError(f"valuation is not defined on {value!r}") from exc

    def get(self, value: Value, default: Optional[Value] = None) -> Optional[Value]:
        """Image of ``value`` or ``default`` when undefined."""
        return self._mapping.get(value, default)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Valuation):
            return NotImplemented
        return self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash(frozenset(self._mapping.items()))

    def __len__(self) -> int:
        return len(self._mapping)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{k.name}->{v.name}" for k, v in sorted(self._mapping.items())
        )
        return f"Valuation({pairs})"

    # -- application ----------------------------------------------------------

    def apply_row(self, row: Row) -> Row:
        """``alpha(w)``: apply the valuation to every cell of a row.

        Raises ``KeyError`` if the valuation is undefined on some value of
        the row; use :meth:`extends_row_into` when partial application is
        intended.
        """
        return Row({attr: self(value) for attr, value in row.items()})

    def apply_relation(self, relation: Relation) -> Relation:
        """``alpha(I)``: apply the valuation to every row of a relation."""
        return Relation(relation.universe, (self.apply_row(r) for r in relation))

    # -- extension ------------------------------------------------------------

    def extended(self, additions: Mapping[Value, Value]) -> "Valuation":
        """A valuation agreeing with this one plus the new bindings.

        Raises :class:`TypingError` if a new binding conflicts with an
        existing one or violates typing.
        """
        data = dict(self._mapping)
        for source, target in additions.items():
            _check_typed_pair(source, target)
            existing = data.get(source)
            if existing is not None and existing != target:
                raise TypingError(
                    f"conflicting extension for {source!r}: "
                    f"{existing!r} vs {target!r}"
                )
            data[source] = target
        return Valuation(data)

    def restricted_to(self, values: Iterable[Value]) -> "Valuation":
        """The restriction of the valuation to the given source values."""
        wanted = set(values)
        return Valuation({k: v for k, v in self._mapping.items() if k in wanted})

    def is_identity(self) -> bool:
        """Whether every defined value maps to itself."""
        return all(k == v for k, v in self._mapping.items())

    @classmethod
    def identity_on(cls, values: Iterable[Value]) -> "Valuation":
        """The identity valuation on a set of values."""
        return cls({v: v for v in values})


def _check_typed_pair(source: Value, target: Value) -> None:
    if source.tag is not None and target.tag is not None and source.tag != target.tag:
        raise TypingError(
            f"valuation would map {source!r} (DOM({source.tag})) to "
            f"{target!r} (DOM({target.tag}))"
        )
    if source.tag is not None and target.tag is None:
        # A typed value may only be renamed within its own domain; mapping it
        # to an untagged value would silently drop the typing certificate.
        raise TypingError(
            f"valuation would map typed {source!r} to untyped {target!r}"
        )
    if source.tag is None and target.tag is not None:
        raise TypingError(
            f"valuation would map untyped {source!r} to typed {target!r}"
        )


def build_row_index(
    relation: Relation,
) -> Dict[tuple[Attribute, Value], Dict[Row, None]]:
    """The (attribute, value) -> rows index :func:`homomorphisms` prunes with.

    Buckets are insertion-ordered dicts used as ordered sets, so callers that
    maintain the index incrementally (the chase's delta-driven strategy) can
    remove rewritten rows in O(1) while iteration order stays deterministic.
    """
    index: Dict[tuple[Attribute, Value], Dict[Row, None]] = {}
    attrs = relation.universe.attributes
    for row in relation.rows:
        for attr in attrs:
            index.setdefault((attr, row[attr]), {})[row] = None
    return index


def homomorphisms(
    source: Relation,
    target: Relation,
    seed: Optional[Valuation] = None,
    limit: Optional[int] = None,
    index: Optional[Dict] = None,
) -> Iterator[Valuation]:
    """Enumerate valuations ``alpha`` on ``source`` with ``alpha(source) <= target``.

    This is a backtracking search over the rows of ``source``: each source
    row must be mapped onto some target row consistently with the partial
    value mapping accumulated so far.  The ``seed`` valuation (if given)
    pre-binds some values -- used, e.g., when the chase re-checks whether an
    existing trigger is already satisfied.

    The returned valuations are defined exactly on ``VAL(source)`` (plus the
    seed's domain), matching the paper's "valuation on a relation".

    Parameters
    ----------
    source, target:
        Relations over the same universe.
    seed:
        Partial valuation that every enumerated homomorphism must extend.
    limit:
        Stop after yielding this many homomorphisms (``None`` = no limit).
    index:
        A prebuilt :func:`build_row_index` of ``target``.  Callers that probe
        one target many times (the incremental chase strategy) maintain the
        index across calls; without it, the index is built once per target
        relation and cached on it (relations are immutable), so repeated
        one-shot probes of the same target stop paying an O(|target|)
        indexing pass each.
    """
    if source.universe != target.universe:
        raise TypingError("homomorphism search requires a common universe")
    source_rows = _order_rows_for_search(source)
    attrs = list(source.universe.attributes)

    # Pre-index target rows per (attribute, value) for cheap candidate pruning.
    if index is None:
        index = target._hom_index
        if index is None:
            index = build_row_index(target)
            target._hom_index = index
    all_rows: list[Row] = []

    binding: Dict[Value, Value] = dict(seed.as_dict()) if seed is not None else {}
    count = 0

    def candidates(row: Row):
        """Target rows compatible with the current binding for ``row``."""
        best = None
        for attr in attrs:
            value = row[attr]
            bound = binding.get(value)
            if bound is None:
                continue
            bucket = index.get((attr, bound), ())
            if not bucket:
                # Some bound cell has no occurrence in the target: no image
                # exists, so skip probing the remaining attributes entirely.
                return []
            if best is None or len(bucket) < len(best):
                best = bucket
                if len(best) == 1:
                    # A singleton bucket is already maximally selective.
                    break
        if best is None:
            if not all_rows:
                all_rows.extend(target.rows)
            return all_rows
        return best

    def assign(row: Row, image: Row) -> Optional[list[Value]]:
        """Try binding row -> image; return newly bound values or None on clash."""
        added: list[Value] = []
        for attr in attrs:
            value = row[attr]
            target_value = image[attr]
            bound = binding.get(value)
            if bound is None:
                if value.tag != target_value.tag:
                    _undo(added)
                    return None
                binding[value] = target_value
                added.append(value)
            elif bound != target_value:
                _undo(added)
                return None
        return added

    def _undo(added: list[Value]) -> None:
        for value in added:
            del binding[value]

    def search(position: int) -> Iterator[Valuation]:
        nonlocal count
        if limit is not None and count >= limit:
            return
        if position == len(source_rows):
            count += 1
            yield Valuation(dict(binding))
            return
        row = source_rows[position]
        for image in candidates(row):
            added = assign(row, image)
            if added is None:
                continue
            yield from search(position + 1)
            _undo(added)
            if limit is not None and count >= limit:
                return

    yield from search(0)


def has_homomorphism(
    source: Relation, target: Relation, seed: Optional[Valuation] = None
) -> bool:
    """Whether at least one homomorphism from ``source`` into ``target`` exists."""
    return next(homomorphisms(source, target, seed=seed, limit=1), None) is not None


def row_embeddings(
    row: Row,
    relation: Relation,
    base: Valuation,
    body_values: frozenset[Value],
) -> Iterator[Valuation]:
    """Enumerate extensions of ``base`` to ``row`` landing inside ``relation``.

    Used for template-dependency satisfaction: ``base`` is a valuation on the
    body ``I``; the extension must send the conclusion row ``w`` onto some row
    of ``relation``.  Values of ``w`` already in ``VAL(I)`` (``body_values``)
    are fixed by ``base``; the remaining values are free, subject to typing.
    """
    for candidate in relation:
        bindings: dict[Value, Value] = {}
        feasible = True
        for attr, value in row.items():
            image = candidate[attr]
            if value in body_values or base.defined_on(value):
                if base.get(value) != image:
                    feasible = False
                    break
            else:
                if value.tag != image.tag:
                    feasible = False
                    break
                previous = bindings.get(value)
                if previous is not None and previous != image:
                    feasible = False
                    break
                bindings[value] = image
        if feasible:
            yield base.extended(bindings)


def _order_rows_for_search(source: Relation) -> list[Row]:
    """Order source rows to maximise early pruning.

    Rows sharing many values with already-placed rows are placed sooner, a
    cheap variant of the "most constrained variable" heuristic.
    """
    remaining = source.sorted_rows()
    if not remaining:
        return []
    ordered = [remaining.pop(0)]
    placed_values = set(ordered[0].values())
    while remaining:
        best_index = 0
        best_overlap = -1
        for i, row in enumerate(remaining):
            overlap = len(placed_values & set(row.values()))
            if overlap > best_overlap:
                best_overlap = overlap
                best_index = i
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        placed_values.update(chosen.values())
    return ordered
