"""X-values and tuples (Section 2.1).

An *X-value* is a mapping from an attribute set ``X`` to domain values; a
*tuple* is a U-value, i.e. an X-value whose attribute set is the whole
universe.  The library calls both :class:`Row` to avoid clashing with
Python's built-in tuple; the paper terminology is kept in the docstrings.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Union

from repro.model.attributes import Attribute, AttributeLike, Universe, as_attribute
from repro.model.values import Value, ValueLike, check_column_value, typed, untyped
from repro.util.errors import SchemaError

RowMapping = Mapping[AttributeLike, Union[Value, str, int]]


def _coerce_value(value: Union[Value, str, int]) -> Value:
    if isinstance(value, Value):
        return value
    return Value(str(value), None)


class Row:
    """An immutable X-value: a mapping from attributes to domain values.

    Rows are hashable and compare by their attribute/value pairs, so a
    relation can store them in a set.  The attribute set of a row (its
    *scheme*) is fixed at construction.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, mapping: RowMapping) -> None:
        pairs = []
        seen: set[Attribute] = set()
        for raw_attr, raw_value in mapping.items():
            attr = as_attribute(raw_attr)
            if attr in seen:
                raise SchemaError(f"attribute {attr} given twice in row")
            seen.add(attr)
            value = _coerce_value(raw_value)
            check_column_value(attr, value)
            pairs.append((attr, value))
        if not pairs:
            raise SchemaError("a row must have at least one attribute")
        pairs.sort(key=lambda item: item[0].name)
        self._items: tuple[tuple[Attribute, Value], ...] = tuple(pairs)
        self._hash = hash(self._items)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def over(cls, universe: Universe, values: Iterable[ValueLike]) -> "Row":
        """Build a row over ``universe`` from values given in universe order.

        String/int values are wrapped as untyped values; pass :class:`Value`
        objects for typed rows.
        """
        values = list(values)
        attrs = universe.attributes
        if len(values) != len(attrs):
            raise SchemaError(
                f"expected {len(attrs)} values for universe "
                f"{''.join(a.name for a in attrs)}, got {len(values)}"
            )
        return cls(dict(zip(attrs, values)))

    @classmethod
    def typed_over(cls, universe: Universe, names: Iterable[Union[str, int]]) -> "Row":
        """Build a typed row: each value is tagged with its column's attribute."""
        names = list(names)
        attrs = universe.attributes
        if len(names) != len(attrs):
            raise SchemaError(
                f"expected {len(attrs)} values for universe "
                f"{''.join(a.name for a in attrs)}, got {len(names)}"
            )
        return cls({a: typed(n, a) for a, n in zip(attrs, names)})

    @classmethod
    def untyped_over(
        cls, universe: Universe, names: Iterable[Union[str, int]]
    ) -> "Row":
        """Build an untyped row (all values untagged)."""
        names = list(names)
        attrs = universe.attributes
        if len(names) != len(attrs):
            raise SchemaError(
                f"expected {len(attrs)} values for universe "
                f"{''.join(a.name for a in attrs)}, got {len(names)}"
            )
        return cls({a: untyped(n) for a, n in zip(attrs, names)})

    # -- paper operations -----------------------------------------------------

    @property
    def scheme(self) -> tuple[Attribute, ...]:
        """The attribute set of this X-value (sorted by attribute name)."""
        return tuple(attr for attr, _ in self._items)

    def __getitem__(self, attribute: AttributeLike) -> Value:
        attr = as_attribute(attribute)
        for candidate, value in self._items:
            if candidate == attr:
                return value
        raise SchemaError(f"row has no attribute {attr}")

    def get(self, attribute: AttributeLike) -> Value | None:
        """Like ``__getitem__`` but returning ``None`` for missing attributes."""
        attr = as_attribute(attribute)
        for candidate, value in self._items:
            if candidate == attr:
                return value
        return None

    def restrict(self, attributes: Iterable[AttributeLike]) -> "Row":
        """The restriction ``w[Y]`` of this row to the attribute set ``Y``."""
        attrs = {as_attribute(a) for a in attributes}
        missing = attrs - set(self.scheme)
        if missing:
            raise SchemaError(
                f"row has no attributes {sorted(a.name for a in missing)}"
            )
        return Row({a: v for a, v in self._items if a in attrs})

    def values(self) -> frozenset[Value]:
        """``VAL(w)``: the set of all values appearing in the row."""
        return frozenset(v for _, v in self._items)

    def items(self) -> tuple[tuple[Attribute, Value], ...]:
        """The (attribute, value) pairs of the row, sorted by attribute name."""
        return self._items

    def as_dict(self) -> dict[Attribute, Value]:
        """A plain dict copy of the row's mapping."""
        return dict(self._items)

    def replace(self, updates: RowMapping) -> "Row":
        """A copy of this row with some attributes re-assigned."""
        data = self.as_dict()
        for raw_attr, raw_value in updates.items():
            attr = as_attribute(raw_attr)
            if attr not in data:
                raise SchemaError(f"row has no attribute {attr}")
            data[attr] = _coerce_value(raw_value)
        return Row(data)

    def agrees_with(self, other: "Row", attributes: Iterable[AttributeLike]) -> bool:
        """Whether ``self[X] == other[X]`` for the attribute set ``X``."""
        return all(self[a] == other[a] for a in attributes)

    def is_typed(self) -> bool:
        """Whether every value in the row is typed and matches its column."""
        return all(v.tag == a.name for a, v in self._items)

    def is_untyped(self) -> bool:
        """Whether every value in the row is untyped."""
        return all(v.tag is None for _, v in self._items)

    # -- dunder plumbing ------------------------------------------------------

    def __iter__(self) -> Iterator[Value]:
        return (v for _, v in self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        cells = ", ".join(f"{a.name}={v.name}" for a, v in self._items)
        return f"Row({cells})"

    def __str__(self) -> str:
        return "(" + ", ".join(v.name for _, v in self._items) + ")"
