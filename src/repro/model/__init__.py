"""Relational substrate: attributes, values, rows, relations, valuations."""

from repro.model.attributes import Attribute, Universe, as_attribute, attribute_set_name
from repro.model.values import Value, typed, untyped, typed_values, untyped_values
from repro.model.tuples import Row
from repro.model.relations import Relation
from repro.model.valuations import (
    Valuation,
    homomorphisms,
    has_homomorphism,
    row_embeddings,
)

__all__ = [
    "Attribute",
    "Universe",
    "as_attribute",
    "attribute_set_name",
    "Value",
    "typed",
    "untyped",
    "typed_values",
    "untyped_values",
    "Row",
    "Relation",
    "Valuation",
    "homomorphisms",
    "has_homomorphism",
    "row_embeddings",
]
