"""Domain values for typed and untyped relations (Section 2.1 and 2.4).

The paper distinguishes two regimes:

* **untyped**: all attributes share one domain ``DOM(U')``; a value may appear
  in any column.
* **typed**: distinct attributes have disjoint domains; a value belongs to the
  domain of exactly one attribute.

We model both with a single immutable :class:`Value` carrying an optional
``tag``.  A value with ``tag="A"`` belongs to ``DOM(A)`` and may only ever
appear in column ``A`` of a typed relation; a value with ``tag=None`` is
untyped and may appear anywhere.  The library enforces the typing discipline
at relation-construction time (see :mod:`repro.model.relations`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from repro.model.attributes import Attribute, AttributeLike, as_attribute
from repro.util.errors import TypingError

ValueLike = Union["Value", str, int]


@dataclass(frozen=True, order=True)
class Value:
    """A single domain element.

    Parameters
    ----------
    name:
        The display name of the value (``a``, ``a1``, ``d0`` ...).
    tag:
        ``None`` for untyped values; otherwise the name of the unique
        attribute whose domain contains this value.

    Two values are equal iff both their names and tags are equal: the typed
    element ``a^1 in DOM(A)`` and the untyped element ``a`` are different
    values even though they share a display name, exactly as in the paper's
    Section 3 translation.
    """

    name: str
    tag: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise TypingError("value name must be non-empty")

    @property
    def is_typed(self) -> bool:
        """Whether the value belongs to the domain of a specific attribute."""
        return self.tag is not None

    def belongs_to(self, attribute: AttributeLike) -> bool:
        """Whether the value may appear in the column of ``attribute``.

        Untyped values may appear anywhere; typed values only in the column
        that matches their tag.
        """
        if self.tag is None:
            return True
        return self.tag == as_attribute(attribute).name

    def retagged(self, attribute: Optional[AttributeLike]) -> "Value":
        """A copy of this value carrying the tag of ``attribute`` (or no tag)."""
        if attribute is None:
            return Value(self.name, None)
        return Value(self.name, as_attribute(attribute).name)

    def __str__(self) -> str:
        return self.name


def untyped(name: ValueLike) -> Value:
    """Construct an untyped value from a name (string or int) or pass one through."""
    if isinstance(name, Value):
        if name.tag is not None:
            raise TypingError(f"{name!r} is typed; expected an untyped value")
        return name
    return Value(str(name), None)


def typed(name: ValueLike, attribute: AttributeLike) -> Value:
    """Construct a typed value belonging to ``DOM(attribute)``."""
    attr = as_attribute(attribute)
    if isinstance(name, Value):
        if name.tag is not None and name.tag != attr.name:
            raise TypingError(
                f"{name!r} already belongs to DOM({name.tag}), not DOM({attr.name})"
            )
        return Value(name.name, attr.name)
    return Value(str(name), attr.name)


def untyped_values(names: Iterable[ValueLike]) -> list[Value]:
    """Construct a list of untyped values."""
    return [untyped(n) for n in names]


def typed_values(names: Iterable[ValueLike], attribute: AttributeLike) -> list[Value]:
    """Construct a list of typed values for one attribute's domain."""
    return [typed(n, attribute) for n in names]


def same_domain(left: Value, right: Value) -> bool:
    """Whether two values may legally be equated by a typed egd.

    In the typed regime an equality-generating dependency may only equate two
    values from the domain of the same attribute (Section 2.4).  Untyped
    values share a single domain and may always be equated.
    """
    return left.tag == right.tag


def check_column_value(attribute: Attribute, value: Value) -> Value:
    """Validate that ``value`` may appear in the column of ``attribute``."""
    if not value.belongs_to(attribute):
        raise TypingError(
            f"value {value!r} belongs to DOM({value.tag}) and cannot appear "
            f"in column {attribute.name}"
        )
    return value
