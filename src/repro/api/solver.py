"""The :class:`Solver` facade: one object for the whole library surface.

A solver bundles a universe, a frozen :class:`~repro.config.SolverConfig`
and two memoization layers (premise normalisation, solved outcomes) behind
the operations users actually perform:

* ``implies`` / ``finitely_implies`` / ``solve`` -- implication queries over
  any dependency class, answered by the strongest applicable procedure;
* ``solve_text`` / ``parse`` -- the same, stated in the text DSL of
  :mod:`repro.api.dsl`;
* ``solve_many`` -- the batch path (deduplication, memoization, optional
  process-pool fan-out);
* ``chase`` -- chase an instance with dependencies of any class (conversion
  to the paper's two primitive classes happens internally);
* ``reduce_untyped_to_typed`` / ``reduce_td_to_pjd`` -- the paper's
  Theorem 2 / Theorem 6 reduction pipelines.

Every outcome is an :class:`~repro.implication.problem.ImplicationOutcome`
and therefore JSON-serializable via ``to_dict()``.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.api.batch import BatchStats, solve_problems
from repro.api.dsl import describe_dependency, parse_dependency, parse_dependency_set
from repro.api.identity import ProblemIdentity, identity_of
from repro.api.store import NullStore, OutcomeStore, StoreHit, build_store
from repro.chase.engine import ChaseEngine
from repro.chase.result import ChaseResult
from repro.config import ChaseBudget, SolverConfig
from repro.dependencies.base import Dependency
from repro.implication.engine import ImplicationEngine
from repro.implication.normalize import normalize_all
from repro.implication.problem import ImplicationOutcome, ImplicationProblem
from repro.model.attributes import Universe
from repro.model.relations import Relation

#: Anything a premise/conclusion slot accepts: a dependency object or DSL text.
DependencyLike = Union[Dependency, str]


class Solver:
    """A configured, memoizing facade over the implication machinery.

    Parameters
    ----------
    universe:
        The universe queries are interpreted over -- a :class:`Universe` or a
        string of attribute names (``"ABC"``).  ``None`` infers it per query
        from the first td/egd, exactly as :class:`ImplicationEngine` does.
    config:
        The frozen solver configuration; defaults to ``SolverConfig()``.
        ``config.cache`` picks the problem-identity mode (syntactic vs
        canonical) and the backing :class:`~repro.api.store.OutcomeStore`.
    use_cache:
        Disable both memoization layers (useful for benchmarking the
        uncached path; answers are identical either way).  Equivalent to
        ``config.with_cache(store="off")`` plus an empty premise cache.
    store:
        An explicit :class:`~repro.api.store.OutcomeStore` to use instead
        of the one ``config.cache`` would build -- how several solvers (or
        service workers, via :class:`~repro.api.store.FileOutcomeStore`)
        share one cache.
    """

    def __init__(
        self,
        universe: Optional[Union[Universe, str]] = None,
        config: Optional[SolverConfig] = None,
        *,
        use_cache: bool = True,
        store: Optional[OutcomeStore] = None,
    ) -> None:
        if isinstance(universe, str):
            universe = Universe.from_names(universe)
        self._universe = universe
        self._config = config if config is not None else SolverConfig()
        self._cache_mode = self._config.cache.resolved_mode()
        if not use_cache:
            self._premise_cache: Optional[dict] = None
            self._store: OutcomeStore = NullStore()
        else:
            self._premise_cache = {}
            self._store = (
                store if store is not None else build_store(self._config.cache)
            )
        self._identity_context = self._build_identity_context()
        self._stats = BatchStats()
        self._engine = ImplicationEngine(
            universe=universe,
            config=self._config,
            premise_cache=self._premise_cache,
        )

    def _build_identity_context(self) -> tuple:
        """The context scoping this solver's cache keys.

        Everything that can change an outcome (universe, budgets, trace
        mode) is part of the key; the cache policy itself is not, so
        differently-cached solvers sharing one store still hit.  Checkpoint
        settings only decide whether a durable log is written alongside the
        run -- never the answer -- so they are excluded the same way.
        """
        config = self._config.to_dict()
        config.pop("cache", None)
        if isinstance(config.get("chase"), dict):
            config["chase"].pop("checkpoint", None)
        universe = (
            None
            if self._universe is None
            else tuple(a.name for a in self._universe.attributes)
        )
        return (universe, repr(sorted(config.items(), key=repr)))

    # -- accessors -------------------------------------------------------------

    @property
    def universe(self) -> Optional[Universe]:
        """The fixed universe, or ``None`` when inferred per query."""
        return self._universe

    @property
    def config(self) -> SolverConfig:
        """The frozen configuration every query runs under."""
        return self._config

    @property
    def engine(self) -> ImplicationEngine:
        """The underlying implication engine (an escape hatch)."""
        return self._engine

    @property
    def store(self) -> OutcomeStore:
        """The outcome store every dedup layer routes through."""
        return self._store

    @property
    def cache_mode(self) -> str:
        """The resolved problem-identity mode (``syntactic``/``canonical``)."""
        return self._cache_mode

    @property
    def stats(self) -> BatchStats:
        """Lifetime batch counters (problems seen, cache hits, solves).

        ``stats.last_run`` holds the most recent run's own
        :class:`~repro.api.batch.BatchRunStats` -- the per-call dedup and
        hit/miss numbers that ``solve_many`` itself does not return.
        """
        return self._stats

    def clear_caches(self) -> None:
        """Drop both memoization layers (budget changes never need this --
        configs are frozen, so a differently-budgeted solver is a new object)."""
        if self._premise_cache is not None:
            self._premise_cache.clear()
        self._store.clear()

    # -- problem identity ------------------------------------------------------

    def identity(self, problem: ImplicationProblem) -> ProblemIdentity:
        """The problem's cache identity under this solver's mode and context.

        Identities are memoized on the (frozen) problem object, so the
        coalescer, the batch path and :meth:`solve` computing the identity
        of one problem pay the canonicalization cost once.
        """
        cache = problem.__dict__.get("_identity_cache")
        if cache is None:
            cache = {}
            object.__setattr__(problem, "_identity_cache", cache)
        slot = (self._cache_mode, self._identity_context)
        identity = cache.get(slot)
        if identity is None:
            identity = identity_of(
                problem, mode=self._cache_mode, context=self._identity_context
            )
            cache[slot] = identity
        return identity

    def _coerce_identity(self, key) -> ProblemIdentity:
        """Accept an identity, a problem, or the legacy key tuple."""
        if isinstance(key, ProblemIdentity):
            return key
        if isinstance(key, ImplicationProblem):
            return self.identity(key)
        if isinstance(key, tuple) and len(key) == 3:
            return self.identity(
                ImplicationProblem.of(key[0], key[1], finite=key[2])
            )
        raise TypeError(
            "expected a ProblemIdentity, an ImplicationProblem, or the "
            f"legacy (premises, conclusion, finite) tuple, got {type(key).__name__}"
        )

    # -- DSL -------------------------------------------------------------------

    def parse(self, text: str) -> Dependency:
        """Parse one dependency from DSL text, validated against the universe."""
        return parse_dependency(text, universe=self._universe)

    def parse_set(self, text: str) -> list[Dependency]:
        """Parse a newline-separated dependency list from DSL text."""
        return parse_dependency_set(text, universe=self._universe)

    def describe(self, dependency: Dependency) -> str:
        """Render a dependency in the DSL (inverse of :meth:`parse`)."""
        return describe_dependency(dependency)

    def _coerce(self, dependency: DependencyLike) -> Dependency:
        if isinstance(dependency, str):
            return self.parse(dependency)
        return dependency

    def _coerce_all(
        self, dependencies: Union[str, Iterable[DependencyLike]]
    ) -> list[Dependency]:
        if isinstance(dependencies, str):
            return self.parse_set(dependencies)
        return [self._coerce(d) for d in dependencies]

    # -- single queries --------------------------------------------------------

    def implies(
        self,
        premises: Union[str, Iterable[DependencyLike]],
        conclusion: DependencyLike,
    ) -> ImplicationOutcome:
        """Does ``premises |= conclusion``?  Accepts objects or DSL text."""
        return self.solve(self.problem(premises, conclusion, finite=False))

    def finitely_implies(
        self,
        premises: Union[str, Iterable[DependencyLike]],
        conclusion: DependencyLike,
    ) -> ImplicationOutcome:
        """Does ``premises |=_f conclusion``?  Accepts objects or DSL text."""
        return self.solve(self.problem(premises, conclusion, finite=True))

    def problem(
        self,
        premises: Union[str, Iterable[DependencyLike]],
        conclusion: DependencyLike,
        finite: bool = False,
    ) -> ImplicationProblem:
        """Build an :class:`ImplicationProblem` from objects or DSL text."""
        return ImplicationProblem.of(
            self._coerce_all(premises), self._coerce(conclusion), finite=finite
        )

    def solve(
        self,
        problem: ImplicationProblem,
        *,
        deadline: Optional[float] = None,
    ) -> ImplicationOutcome:
        """Solve one problem, consulting and feeding the outcome store.

        ``deadline`` (an absolute ``time.monotonic()`` instant) cuts the
        chase at the next round boundary with
        :class:`~repro.util.errors.ChaseDeadlineExceeded`.  A deadline cut
        raises before the store is fed, so an expired request can never
        poison the cache with a timing-dependent ``UNKNOWN``.
        """
        # Only pass the keyword when a deadline is actually set, so stubbed
        # engines with the historical solve(problem) shape keep working.
        kwargs = {} if deadline is None else {"deadline": deadline}
        if isinstance(self._store, NullStore):
            return self._engine.solve(problem, **kwargs)
        identity = self.identity(problem)
        hit = self._store.get(identity)
        if hit is not None:
            return hit.outcome
        outcome = self._engine.solve(problem, **kwargs)
        self._store.put(identity, outcome)
        return outcome

    def solve_text(
        self, premises: str, conclusion: str, finite: bool = False
    ) -> ImplicationOutcome:
        """Solve a problem stated entirely in the DSL.

        ``premises`` is a newline-separated dependency block (blank lines and
        ``#`` comments allowed), ``conclusion`` a single dependency.
        """
        return self.solve(self.problem(premises, conclusion, finite=finite))

    # -- batch path ------------------------------------------------------------

    def solve_many(
        self,
        problems: Sequence[ImplicationProblem],
        *,
        processes: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> list[ImplicationOutcome]:
        """Solve many problems at once (see :mod:`repro.api.batch`).

        Results align positionally with ``problems`` and are identical to
        calling :meth:`solve` on each problem in sequence; repeated problems
        and shared premise sets are solved/normalised only once.
        ``deadline`` bounds the wall clock of the sequential path exactly as
        in :meth:`solve`; the process-pool fan-out ignores it (a monotonic
        instant of this process means nothing in a worker).
        """
        return solve_problems(self, problems, processes=processes, deadline=deadline)

    async def solve_many_async(
        self,
        problems: Sequence[ImplicationProblem],
        *,
        processes: Optional[int] = None,
        max_in_flight: Optional[int] = None,
    ) -> list[ImplicationOutcome]:
        """Solve many problems through a throwaway asyncio front-end.

        A convenience wrapper building an
        :class:`~repro.api.async_batch.AsyncSolver` around this solver for
        one call: queries multiplex over one shared pool of ``processes``
        workers with at most ``max_in_flight`` dispatched at a time (the
        semaphore backpressure), sharing this solver's outcome cache.
        Long-lived services should hold an ``AsyncSolver`` directly so the
        pool outlives individual batches.  Answers are identical to
        :meth:`solve_many` / :meth:`solve`.
        """
        from repro.api.async_batch import DEFAULT_MAX_IN_FLIGHT, AsyncSolver

        front = AsyncSolver(
            self,
            processes=processes,
            max_in_flight=(
                DEFAULT_MAX_IN_FLIGHT if max_in_flight is None else max_in_flight
            ),
        )
        try:
            return await front.solve_many(problems)
        finally:
            front.close()

    def lookup(self, key) -> Optional[StoreHit]:
        """The store entry for a problem/identity, with hit classification.

        Accepts a :class:`~repro.api.identity.ProblemIdentity`, an
        :class:`ImplicationProblem`, or the legacy
        ``(premises, conclusion, finite)`` tuple.  The returned
        :class:`~repro.api.store.StoreHit` says whether the entry was
        populated by this very statement or by a renamed twin.
        """
        return self._store.get(self._coerce_identity(key))

    def cached_outcome(self, key) -> Optional[ImplicationOutcome]:
        """The memoized outcome under a problem identity, if any."""
        hit = self.lookup(key)
        return None if hit is None else hit.outcome

    def seed_outcome(self, key, outcome: ImplicationOutcome) -> None:
        """Insert a precomputed outcome (used by the process-pool fan-out)."""
        self._store.put(self._coerce_identity(key), outcome)

    # -- chase -----------------------------------------------------------------

    def chase(
        self,
        instance: Relation,
        dependencies: Union[str, Iterable[DependencyLike]],
        *,
        trace: Optional[bool] = None,
        strategy: Optional[str] = None,
    ) -> ChaseResult:
        """Chase ``instance`` with dependencies of any class.

        Non-primitive classes (fds, mvds, jds, pjds) are normalised to the
        paper's td/egd primitives over the instance's universe first, so the
        chase semantics stay exactly those of the paper.  ``strategy``
        (``"rescan"`` / ``"incremental"`` / ``"sharded"`` / ``"auto"``)
        overrides the configured ``chase_strategy`` for this one run; the
        sharded strategy reads its worker count from the configured
        ``ChaseBudget.shard_count``.
        """
        coerced = self._coerce_all(dependencies)
        primitives = normalize_all(coerced, instance.universe)
        engine = ChaseEngine(
            primitives,
            trace=self._config.trace if trace is None else trace,
            budget=self._config.chase,
            strategy=strategy,
        )
        return engine.run(instance)

    def resume(
        self,
        checkpoint: str,
        *,
        budget: Optional[ChaseBudget] = None,
        strategy: Optional[str] = None,
    ) -> ChaseResult:
        """Resume an interrupted chase from its checkpoint token.

        ``checkpoint`` is the token a ``BUDGET_EXHAUSTED``
        :class:`~repro.chase.result.ChaseResult` carried (or a path to a log
        segment); it is resolved against this solver's configured checkpoint
        directory.  ``budget`` defaults to the solver's own chase budget --
        pass a raised one (or configure one) to let the resumed run get past
        the point where the original was cut off.  The solver's checkpoint
        policy is grafted onto whatever budget runs, so a resumed run on a
        checkpointing solver stays durable (and re-exhaustion hands back a
        fresh token).  See :func:`repro.chase.engine.resume_chase` for the
        identity guarantees.
        """
        from dataclasses import replace

        from repro.chase.engine import resume_chase

        chase_config = self._config.chase
        if budget is None:
            budget = chase_config
        else:
            budget = replace(budget, checkpoint=chase_config.checkpoint)
        return resume_chase(
            checkpoint,
            budget=budget,
            strategy=strategy,
            directory=chase_config.checkpoint.resolved_directory(),
        )

    # -- the paper's reduction pipelines ----------------------------------------

    def reduce_untyped_to_typed(self, premises, conclusion):
        """Theorem 2's reduction of untyped to typed (finite) implication.

        Delegates to :func:`repro.core.reduction_typed.reduce_untyped_to_typed`;
        the import is local so the facade stays cheap to import.
        """
        from repro.core.reduction_typed import reduce_untyped_to_typed

        return reduce_untyped_to_typed(premises, conclusion)

    def reduce_td_to_pjd(self, premises, conclusion):
        """Theorem 6's reduction of td implication to pjd implication.

        Delegates to :func:`repro.core.reduction_pjd.reduce_td_to_pjd`.
        """
        from repro.core.reduction_pjd import reduce_td_to_pjd

        return reduce_td_to_pjd(premises, conclusion)


def solve_one(
    premises: Union[str, Sequence[DependencyLike]],
    conclusion: DependencyLike,
    universe: Optional[Union[Universe, str]] = None,
    config: Optional[SolverConfig] = None,
    finite: bool = False,
) -> ImplicationOutcome:
    """One-shot convenience: build a throwaway :class:`Solver` and query it."""
    solver = Solver(universe=universe, config=config)
    return solver.solve(solver.problem(premises, conclusion, finite=finite))
