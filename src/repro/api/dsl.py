"""A compact text DSL for dependencies, with a parse/describe round-trip.

The grammar covers every dependency class of the paper:

=====================  =====================================================
Class                  Syntax
=====================  =====================================================
fd                     ``AB -> C``   (also ``A, B -> C``)
mvd                    ``A ->> BC``  (``{}`` denotes the empty side)
jd                     ``join[AB, BC]``  (also the paper form ``*[AB, BC]``)
pjd                    ``pjoin[AB, BC] => AC``  (also ``*[AB, BC]_AC``)
td (typed tableau)     ``td[ABC]{a b1 c1; a2 b c2} => a b c``
td (untyped tableau)   ``utd[ABC]{x y z; z y x} => x y x``
egd (typed tableau)    ``egd[ABC]{a b1 c1; a b2 c2} : b1 = b2``
egd (untyped tableau)  ``uegd[ABC]{x y z; x z y} : y = z``
=====================  =====================================================

Attribute-set tokens concatenate single-letter names in the paper's style
(``ABC``); multi-character names (``A_0``, ``A'``) parse too, and commas or
spaces may separate attributes explicitly.  Tableau rows are separated by
``;`` and cells by spaces or commas.  In the ``td``/``egd`` (typed) dialects
a bare cell token names a value tagged with its column's attribute; a cell
prefixed with ``~`` is an untagged (untyped-regime) value.  In the
``utd``/``uegd`` dialects every value is untagged.  An optional
``name =`` prefix (as produced by ``MultivaluedDependency.describe`` and
friends) is accepted for the arrow and join forms.

:func:`describe_dependency` renders any dependency back into this grammar,
and ``parse_dependency(describe_dependency(d)) == d`` holds for every
dependency class (dependency equality ignores display names).
"""

from __future__ import annotations

import re
from typing import Iterable, Optional, Sequence

from repro.dependencies.base import Dependency
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.pjd import JoinDependency, ProjectedJoinDependency
from repro.dependencies.td import TemplateDependency
from repro.model.attributes import Attribute, Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import DependencyError


class DSLError(DependencyError):
    """The dependency text does not conform to the DSL grammar."""


#: One attribute name: a letter, an optional numeric index, optional primes.
_ATTR_RE = re.compile(r"[A-Za-z](?:_[0-9]+)?'*")

#: One value token (optionally prefixed by ``~`` in the grammar).
_VALUE_RE = re.compile(r"[A-Za-z0-9_.'^+-]+")

_NAME_PREFIX_RE = re.compile(r"^(?P<name>[\w\[\]/.'^*-]+)\s+=\s+(?P<rest>\S.*)$")

_TABLEAU_RE = re.compile(
    r"^(?P<kind>u?td|u?egd)\s*\[(?P<universe>[^\]]*)\]\s*"
    r"\{(?P<body>[^}]*)\}\s*(?P<tail>.*)$",
    re.DOTALL,
)


def parse_attribute_set(text: str) -> list[Attribute]:
    """Parse an attribute-set token like ``ABC``, ``A, B``, ``A_0B_1`` or ``{}``."""
    stripped = text.strip()
    if stripped in ("{}", ""):
        return []
    attrs: list[Attribute] = []
    for piece in re.split(r"[,\s]+", stripped):
        if not piece:
            continue
        found = _ATTR_RE.findall(piece)
        if "".join(found) != piece:
            raise DSLError(f"cannot parse attribute set {text!r} (near {piece!r})")
        attrs.extend(Attribute(name) for name in found)
    return attrs


def _check_known(
    attrs: Iterable[Attribute], universe: Optional[Universe], text: str
) -> None:
    if universe is None:
        return
    for attr in attrs:
        if attr not in universe:
            raise DSLError(
                f"unknown attribute {attr.name!r} in {text!r}: not in universe "
                f"{''.join(a.name for a in universe)}"
            )


def _parse_fd(
    text: str, universe: Optional[Universe], name: Optional[str]
) -> FunctionalDependency:
    left_text, _, right_text = text.partition("->")
    if "->" in right_text:
        raise DSLError(f"bad arrow in {text!r}: more than one '->'")
    left = parse_attribute_set(left_text)
    right = parse_attribute_set(right_text)
    if not left or not right:
        raise DSLError(f"bad fd {text!r}: both sides of '->' must be non-empty")
    _check_known([*left, *right], universe, text)
    try:
        return FunctionalDependency(left, right, name=name)
    except DependencyError as exc:
        raise DSLError(f"bad fd {text!r}: {exc}") from exc


def _parse_mvd(
    text: str, universe: Optional[Universe], name: Optional[str]
) -> MultivaluedDependency:
    left_text, _, right_text = text.partition("->>")
    if "->" in right_text:
        raise DSLError(f"bad arrow in {text!r}: more than one arrow")
    left = parse_attribute_set(left_text)
    right = parse_attribute_set(right_text)
    _check_known([*left, *right], universe, text)
    try:
        return MultivaluedDependency(left, right, name=name)
    except DependencyError as exc:
        raise DSLError(f"bad mvd {text!r}: {exc}") from exc


def _parse_join(
    text: str, universe: Optional[Universe], name: Optional[str]
) -> ProjectedJoinDependency:
    """Parse ``join[...]``, ``pjoin[...] => X``, ``*[...]`` and ``*[...]_X``."""
    match = re.match(
        r"^(?P<head>join|pjoin|\*)\s*\[(?P<components>[^\]]*)\]\s*(?P<tail>.*)$",
        text.strip(),
        re.DOTALL,
    )
    if match is None:
        raise DSLError(f"cannot parse join dependency {text!r}")
    components = [
        parse_attribute_set(piece)
        for piece in match.group("components").split(",")
        if piece.strip()
    ]
    if not components:
        raise DSLError(f"bad join dependency {text!r}: no components")
    tail = match.group("tail").strip()
    projection: Optional[list[Attribute]] = None
    if tail.startswith("=>"):
        projection = parse_attribute_set(tail[2:])
    elif tail.startswith("_"):
        projection = parse_attribute_set(tail[1:])
    elif tail:
        raise DSLError(f"unexpected trailing text {tail!r} in {text!r}")
    flat = [a for comp in components for a in comp]
    if projection is not None:
        flat.extend(projection)
    _check_known(flat, universe, text)
    try:
        if projection is None or set(projection) == {a for c in components for a in c}:
            return JoinDependency(components, name=name)
        return ProjectedJoinDependency(components, projection, name=name)
    except DependencyError as exc:
        raise DSLError(f"bad join dependency {text!r}: {exc}") from exc


def _parse_cell(token: str, attr: Attribute, typed_dialect: bool) -> Value:
    untagged = token.startswith("~")
    if untagged:
        token = token[1:]
    if not token or _VALUE_RE.fullmatch(token) is None:
        raise DSLError(f"bad value token {token!r} in column {attr.name}")
    if untagged or not typed_dialect:
        return Value(token, None)
    return Value(token, attr.name)


def _parse_rows(
    body_text: str, universe: Universe, typed_dialect: bool, context: str
) -> list[Row]:
    rows: list[Row] = []
    attrs = universe.attributes
    for row_text in body_text.split(";"):
        tokens = [t for t in re.split(r"[,\s]+", row_text.strip()) if t]
        if not tokens:
            continue
        if len(tokens) != len(attrs):
            raise DSLError(
                f"row {row_text.strip()!r} of {context!r} has {len(tokens)} cells, "
                f"expected {len(attrs)}"
            )
        rows.append(
            Row(
                {
                    attr: _parse_cell(token, attr, typed_dialect)
                    for attr, token in zip(attrs, tokens)
                }
            )
        )
    return rows


def _resolve_equality_side(
    token: str, body: Relation, typed_dialect: bool, context: str
) -> Value:
    """Resolve one side of an egd equality to a value of the body."""
    token = token.strip()
    if "@" in token:
        name, _, tag = token.partition("@")
        candidate = Value(name, tag or None)
    elif token.startswith("~") or not typed_dialect:
        candidate = Value(token.lstrip("~"), None)
    else:
        matches = {v for v in body.values() if v.name == token}
        if not matches:
            raise DSLError(f"equality side {token!r} of {context!r} is not in the body")
        if len(matches) > 1:
            raise DSLError(
                f"equality side {token!r} of {context!r} is ambiguous; "
                "disambiguate with 'name@Attribute'"
            )
        return next(iter(matches))
    if candidate not in body.values():
        raise DSLError(f"equality side {token!r} of {context!r} is not in the body")
    return candidate


def _parse_tableau(text: str, universe: Optional[Universe]) -> Dependency:
    match = _TABLEAU_RE.match(text.strip())
    if match is None:
        raise DSLError(f"cannot parse tableau dependency {text!r}")
    kind = match.group("kind")
    typed_dialect = not kind.startswith("u")
    header = parse_attribute_set(match.group("universe"))
    if not header:
        raise DSLError(f"empty universe in {text!r}")
    try:
        tableau_universe = Universe(header)
    except Exception as exc:
        raise DSLError(f"bad universe in {text!r}: {exc}") from exc
    if universe is not None and tableau_universe != universe:
        raise DSLError(
            f"tableau universe {''.join(a.name for a in tableau_universe)} does "
            f"not match the expected universe {''.join(a.name for a in universe)}"
        )
    body_rows = _parse_rows(match.group("body"), tableau_universe, typed_dialect, text)
    if not body_rows:
        raise DSLError(f"empty tableau in {text!r}: a body needs at least one row")
    body = Relation(tableau_universe, body_rows)
    tail = match.group("tail").strip()

    if kind.endswith("egd"):
        if not tail.startswith(":"):
            raise DSLError(f"an egd needs ': a = b' after its body in {text!r}")
        left_text, eq, right_text = tail[1:].partition("=")
        if not eq or "=" in right_text:
            raise DSLError(f"bad equality in {text!r}")
        left = _resolve_equality_side(left_text, body, typed_dialect, text)
        right = _resolve_equality_side(right_text, body, typed_dialect, text)
        try:
            return EqualityGeneratingDependency(left, right, body)
        except DependencyError as exc:
            raise DSLError(f"bad egd {text!r}: {exc}") from exc

    if not tail.startswith("=>"):
        raise DSLError(f"a td needs '=> <conclusion row>' after its body in {text!r}")
    conclusion_rows = _parse_rows(tail[2:], tableau_universe, typed_dialect, text)
    if len(conclusion_rows) != 1:
        raise DSLError(f"a td needs exactly one conclusion row in {text!r}")
    try:
        return TemplateDependency(conclusion_rows[0], body)
    except DependencyError as exc:
        raise DSLError(f"bad td {text!r}: {exc}") from exc


def parse_dependency(text: str, universe: Optional[Universe] = None) -> Dependency:
    """Parse one dependency from its DSL text.

    Parameters
    ----------
    text:
        The dependency in the grammar described in the module docstring.
    universe:
        Optional universe to validate attributes against; tds/egds must then
        declare exactly this universe, and arrow/join forms may only mention
        its attributes.
    """
    stripped = text.strip()
    if not stripped:
        raise DSLError("cannot parse an empty dependency string")
    if re.match(r"^u?(td|egd)\s*\[", stripped):
        return _parse_tableau(stripped, universe)
    prefix = _NAME_PREFIX_RE.match(stripped)
    name = None
    if prefix is not None and not _looks_like_form(prefix.group("name")):
        name = prefix.group("name")
        stripped = prefix.group("rest")
    if stripped.startswith(("join", "pjoin", "*")):
        return _parse_join(stripped, universe, name)
    if "->>" in stripped:
        return _parse_mvd(stripped, universe, name)
    if "->" in stripped:
        return _parse_fd(stripped, universe, name)
    raise DSLError(
        f"cannot parse dependency {text!r}: expected an arrow form (-> / ->>), "
        "a join form (join[...] / pjoin[...] / *[...]), or a tableau form "
        "(td[...] / utd[...] / egd[...] / uegd[...])"
    )


def _looks_like_form(token: str) -> bool:
    """Whether a candidate name token is actually the start of a form."""
    return token.startswith(("join", "pjoin", "*")) or "->" in token


def parse_dependency_set(
    text: str, universe: Optional[Universe] = None
) -> list[Dependency]:
    """Parse a newline-separated list of dependencies.

    Blank lines and ``#`` comment lines are ignored, so premise sets can be
    written as small readable blocks::

        # keys
        AB -> C
        A ->> B
        join[AB, BC]
    """
    dependencies = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        dependencies.append(parse_dependency(stripped, universe))
    return dependencies


# -- rendering -----------------------------------------------------------------


def _attr_set_text(attrs: Iterable[Attribute]) -> str:
    # Multi-character names are space-separated: a comma would be read as a
    # component separator when the set is rendered inside join[...].
    names = sorted(a.name for a in attrs)
    if not names:
        return "{}"
    if any(len(name) > 1 for name in names):
        return " ".join(names)
    return "".join(names)


def _universe_text(universe: Universe) -> str:
    names = [a.name for a in universe.attributes]
    if any(len(name) > 1 for name in names):
        return " ".join(names)
    return "".join(names)


def _safe_value_token(value: Value, context: str) -> str:
    if _VALUE_RE.fullmatch(value.name) is None:
        raise DSLError(
            f"value name {value.name!r} of {context} cannot be rendered in the DSL"
        )
    return value.name


def _cell_text(value: Value, attr: Attribute, typed_dialect: bool, context: str) -> str:
    token = _safe_value_token(value, context)
    if typed_dialect and value.tag is None:
        return f"~{token}"
    return token


def _tableau_text(
    kind: str, universe: Universe, body: Relation, typed_dialect: bool, context: str
) -> str:
    attrs = universe.attributes
    rows = [
        " ".join(_cell_text(row[a], a, typed_dialect, context) for a in attrs)
        for row in body.sorted_rows()
    ]
    prefix = "" if typed_dialect else "u"
    return f"{prefix}{kind}[{_universe_text(universe)}]{{{'; '.join(rows)}}}"


def describe_dependency(dependency: Dependency) -> str:
    """Render a dependency in the DSL grammar (inverse of :func:`parse_dependency`).

    For every dependency class, ``parse_dependency(describe_dependency(d))``
    reconstructs a dependency equal to ``d`` (display names are not part of
    dependency equality and are not rendered).
    """
    if isinstance(dependency, FunctionalDependency):
        return (
            f"{_attr_set_text(dependency.determinant)} -> "
            f"{_attr_set_text(dependency.dependent)}"
        )
    if isinstance(dependency, MultivaluedDependency):
        return (
            f"{_attr_set_text(dependency.determinant)} ->> "
            f"{_attr_set_text(dependency.dependent)}"
        )
    if isinstance(dependency, ProjectedJoinDependency):
        components = ", ".join(_attr_set_text(c) for c in dependency.components)
        if dependency.is_join_dependency():
            return f"join[{components}]"
        return f"pjoin[{components}] => {_attr_set_text(dependency.projection)}"
    if isinstance(dependency, TemplateDependency):
        typed_dialect = any(
            v.tag is not None
            for v in dependency.body.values() | dependency.conclusion.values()
        )
        context = "the td"
        tableau = _tableau_text(
            "td", dependency.universe, dependency.body, typed_dialect, context
        )
        conclusion = " ".join(
            _cell_text(dependency.conclusion[a], a, typed_dialect, context)
            for a in dependency.universe.attributes
        )
        return f"{tableau} => {conclusion}"
    if isinstance(dependency, EqualityGeneratingDependency):
        typed_dialect = any(v.tag is not None for v in dependency.body.values())
        context = "the egd"
        tableau = _tableau_text(
            "egd", dependency.universe, dependency.body, typed_dialect, context
        )
        return (
            f"{tableau} : "
            f"{_equality_side_text(dependency.left, dependency.body, typed_dialect, context)} = "
            f"{_equality_side_text(dependency.right, dependency.body, typed_dialect, context)}"
        )
    raise DSLError(f"cannot render dependency of type {type(dependency).__name__}")


def _equality_side_text(
    value: Value, body: Relation, typed_dialect: bool, context: str
) -> str:
    token = _safe_value_token(value, context)
    if value.tag is None:
        return f"~{token}" if typed_dialect else token
    shared_name = {v for v in body.values() if v.name == value.name}
    if len(shared_name) > 1:
        return f"{token}@{value.tag}"
    return token


def describe_dependency_set(dependencies: Sequence[Dependency]) -> str:
    """Render a dependency list as newline-separated DSL text."""
    return "\n".join(describe_dependency(d) for d in dependencies)
