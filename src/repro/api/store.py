"""Pluggable outcome stores: where solved implication problems live.

One :class:`OutcomeStore` now backs every dedup layer (the solver's memo,
the batch path, the async front-end and the service coalescer all route
through :meth:`repro.api.Solver.lookup`).  Three implementations ship:

* :class:`InMemoryStore` -- the default: a thread-safe LRU with optional
  size and TTL bounds, one per solver;
* :class:`FileOutcomeStore` -- a directory of pickled entries keyed by the
  identity digest, shareable by multiple service workers on one host (the
  stdlib stand-in for the external-KV role ``byoda-python`` gives Redis);
* :class:`NullStore` -- caching off; every lookup misses.

Stores index by :class:`~repro.api.identity.ProblemIdentity.cache_key` and
remember the *fingerprint* that populated each entry, which is how a hit is
classified: same fingerprint means the identical statement was cached
(*syntactic* hit), a different fingerprint under one canonical key means a
renamed twin was (*canonical* hit).  In canonical mode a twin hit returns
the representative's outcome: the verdict and reason are guaranteed
identical (implication is renaming-invariant and reasons are name-free),
but counterexample/chase *presentation* follows the first-seen naming --
pin syntactic mode where byte-identical presentation matters.
"""

from __future__ import annotations

import itertools
import json
import os
import pickle
import tempfile
import threading
import time
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

from repro.api.identity import ProblemIdentity
from repro.config import CacheConfig, ConfigError
from repro.implication.problem import ImplicationOutcome


@dataclass
class StoreStats:
    """Lifetime counters of one store (per process, even for shared stores)."""

    hits: int = 0
    canonical_hits: int = 0
    syntactic_hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (inverse of :meth:`from_dict`)."""
        return {
            "hits": self.hits,
            "canonical_hits": self.canonical_hits,
            "syntactic_hits": self.syntactic_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StoreStats":
        """Rebuild counters from :meth:`to_dict` output (hit_rate is derived)."""
        return cls(
            hits=payload.get("hits", 0),
            canonical_hits=payload.get("canonical_hits", 0),
            syntactic_hits=payload.get("syntactic_hits", 0),
            misses=payload.get("misses", 0),
            puts=payload.get("puts", 0),
            evictions=payload.get("evictions", 0),
        )


@dataclass(frozen=True)
class StoreHit:
    """One successful lookup: the outcome plus how it matched.

    ``canonical`` is True when the entry was populated by a differently
    written (isomorphic) problem -- the renaming-invariant cache at work.
    """

    outcome: ImplicationOutcome
    canonical: bool = False


class OutcomeStore(ABC):
    """The pluggable interface every dedup layer keys outcomes through."""

    @abstractmethod
    def get(self, identity: ProblemIdentity) -> Optional[StoreHit]:
        """The cached outcome under ``identity.cache_key``, if any."""

    @abstractmethod
    def put(self, identity: ProblemIdentity, outcome: ImplicationOutcome) -> None:
        """Record an outcome under ``identity.cache_key``."""

    @property
    @abstractmethod
    def stats(self) -> StoreStats:
        """This process's lifetime hit/miss/eviction counters."""

    @abstractmethod
    def __len__(self) -> int:
        """How many entries the store currently holds."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""


class NullStore(OutcomeStore):
    """Caching disabled: every lookup misses, every put is dropped.

    Lookups are not counted either -- a disabled cache reporting a 0%
    hit rate would read as a misconfigured cache in dashboards.
    """

    def __init__(self) -> None:
        self._stats = StoreStats()

    def get(self, identity: ProblemIdentity) -> Optional[StoreHit]:
        """Always a miss (and deliberately not counted as one)."""
        return None

    def put(self, identity: ProblemIdentity, outcome: ImplicationOutcome) -> None:
        """Drop the outcome."""
        return None

    @property
    def stats(self) -> StoreStats:
        """All-zero counters (a disabled cache records nothing)."""
        return self._stats

    def __len__(self) -> int:
        return 0

    def clear(self) -> None:
        """Nothing to drop."""
        return None


class InMemoryStore(OutcomeStore):
    """A thread-safe in-memory LRU with optional size and TTL bounds.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least recently *used* entry is evicted first.
    ttl:
        Optional seconds an entry stays valid; expired entries count as
        evictions when encountered.
    clock:
        Injectable monotonic clock (tests pin TTL behaviour with it).
    """

    def __init__(
        self,
        max_entries: int = 4096,
        ttl: Optional[float] = None,
        clock=time.monotonic,
    ) -> None:
        if max_entries < 1:
            raise ConfigError("an outcome store needs max_entries >= 1")
        if ttl is not None and ttl <= 0:
            raise ConfigError("ttl must be None or > 0")
        self._max_entries = max_entries
        self._ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[ImplicationOutcome, str, float]]" = (
            OrderedDict()
        )
        self._stats = StoreStats()

    def get(self, identity: ProblemIdentity) -> Optional[StoreHit]:
        """The cached outcome, refreshing LRU order and enforcing TTL."""
        with self._lock:
            entry = self._entries.get(identity.cache_key)
            if entry is not None and self._ttl is not None:
                if self._clock() - entry[2] > self._ttl:
                    del self._entries[identity.cache_key]
                    self._stats.evictions += 1
                    entry = None
            if entry is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end(identity.cache_key)
            outcome, fingerprint, _ = entry
            canonical = fingerprint != identity.fingerprint
            self._stats.hits += 1
            if canonical:
                self._stats.canonical_hits += 1
            else:
                self._stats.syntactic_hits += 1
            return StoreHit(outcome, canonical)

    def put(self, identity: ProblemIdentity, outcome: ImplicationOutcome) -> None:
        """Record the outcome, evicting LRU entries past ``max_entries``."""
        with self._lock:
            self._entries[identity.cache_key] = (
                outcome,
                identity.fingerprint,
                self._clock(),
            )
            self._entries.move_to_end(identity.cache_key)
            self._stats.puts += 1
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._stats.evictions += 1

    @property
    def stats(self) -> StoreStats:
        """This store's lifetime counters."""
        return self._stats

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()


_SIDECAR_SEQ = itertools.count()


class FileOutcomeStore(OutcomeStore):
    """A directory-backed store shareable by multiple worker processes.

    Each entry is one pickle file named by the identity digest, written
    atomically (tempfile + ``os.replace``), so concurrent workers see
    either the old entry or the new one, never a torn read.  TTL and the
    size bound are enforced against file mtimes on access.  Unreadable or
    corrupt entries degrade to misses -- a shared cache must never be able
    to take the service down.

    ``stats`` counts only this process's traffic (each worker populating a
    shared directory keeps its own counters).  Every store additionally
    mirrors its counters to a per-process ``stats-<pid>-<n>.json`` sidecar
    in the directory, and :meth:`shared_stats` aggregates all sidecars --
    so a reader on one worker can report store-wide hit rates instead of
    claiming a cold cache that other workers actually keep warm.
    """

    def __init__(
        self,
        path: str,
        max_entries: int = 4096,
        ttl: Optional[float] = None,
    ) -> None:
        if max_entries < 1:
            raise ConfigError("an outcome store needs max_entries >= 1")
        if ttl is not None and ttl <= 0:
            raise ConfigError("ttl must be None or > 0")
        self._path = path
        self._max_entries = max_entries
        self._ttl = ttl
        self._lock = threading.Lock()
        self._stats = StoreStats()
        os.makedirs(path, exist_ok=True)
        self._sidecar = os.path.join(
            path, f"stats-{os.getpid()}-{next(_SIDECAR_SEQ)}.json"
        )

    def _entry_path(self, identity: ProblemIdentity) -> str:
        return os.path.join(self._path, identity.cache_key.replace(":", "_") + ".pkl")

    def _flush_stats(self) -> None:
        """Mirror this process's counters to the sidecar (best effort)."""
        try:
            fd, staging = tempfile.mkstemp(dir=self._path, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._stats.to_dict(), handle)
            os.replace(staging, self._sidecar)
        except OSError:
            return None

    def get(self, identity: ProblemIdentity) -> Optional[StoreHit]:
        """The cached outcome from disk; corrupt entries degrade to misses."""
        target = self._entry_path(identity)
        with self._lock:
            try:
                try:
                    if self._ttl is not None:
                        age = time.time() - os.path.getmtime(target)
                        if age > self._ttl:
                            os.remove(target)
                            self._stats.evictions += 1
                            self._stats.misses += 1
                            return None
                    with open(target, "rb") as handle:
                        fingerprint, outcome = pickle.load(handle)
                except (OSError, pickle.PickleError, EOFError, ValueError):
                    self._stats.misses += 1
                    return None
                canonical = fingerprint != identity.fingerprint
                self._stats.hits += 1
                if canonical:
                    self._stats.canonical_hits += 1
                else:
                    self._stats.syntactic_hits += 1
                return StoreHit(outcome, canonical)
            finally:
                self._flush_stats()

    def put(self, identity: ProblemIdentity, outcome: ImplicationOutcome) -> None:
        """Write the outcome atomically; disk errors degrade, never raise."""
        target = self._entry_path(identity)
        with self._lock:
            try:
                fd, staging = tempfile.mkstemp(dir=self._path, suffix=".tmp")
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump((identity.fingerprint, outcome), handle)
                os.replace(staging, target)
                self._stats.puts += 1
                self._prune()
            except OSError:
                # A full or read-only disk degrades the cache, not the solve.
                return None
            finally:
                self._flush_stats()

    def shared_stats(self) -> StoreStats:
        """Store-wide counters aggregated across every process's sidecar.

        Sums the ``stats-*.json`` sidecars in the directory (flushing this
        process's first), so the numbers cover all workers sharing the
        store, not just this one.  Unreadable sidecars are skipped.
        """
        with self._lock:
            self._flush_stats()
            total = StoreStats()
            try:
                names = sorted(os.listdir(self._path))
            except OSError:
                names = []
            for name in names:
                if not (name.startswith("stats-") and name.endswith(".json")):
                    continue
                try:
                    with open(
                        os.path.join(self._path, name), encoding="utf-8"
                    ) as handle:
                        part = StoreStats.from_dict(json.load(handle))
                except (OSError, ValueError):
                    continue
                total.hits += part.hits
                total.canonical_hits += part.canonical_hits
                total.syntactic_hits += part.syntactic_hits
                total.misses += part.misses
                total.puts += part.puts
                total.evictions += part.evictions
            return total

    def _prune(self) -> None:
        entries = []
        for name in os.listdir(self._path):
            if not name.endswith(".pkl"):
                continue
            full = os.path.join(self._path, name)
            try:
                entries.append((os.path.getmtime(full), full))
            except OSError:
                continue
        excess = len(entries) - self._max_entries
        if excess <= 0:
            return
        entries.sort()
        for _, full in entries[:excess]:
            try:
                os.remove(full)
                self._stats.evictions += 1
            except OSError:
                continue

    @property
    def stats(self) -> StoreStats:
        """This process's counters only (see :meth:`shared_stats`)."""
        return self._stats

    def __len__(self) -> int:
        try:
            return sum(1 for name in os.listdir(self._path) if name.endswith(".pkl"))
        except OSError:
            return 0

    def clear(self) -> None:
        """Delete every entry file in the shared directory."""
        with self._lock:
            try:
                for name in os.listdir(self._path):
                    if name.endswith(".pkl") or name.endswith(".tmp"):
                        try:
                            os.remove(os.path.join(self._path, name))
                        except OSError:
                            continue
            except OSError:
                return None


def build_store(cache: Optional[CacheConfig] = None) -> OutcomeStore:
    """Construct the store a :class:`~repro.config.CacheConfig` describes."""
    cache = cache if cache is not None else CacheConfig()
    kind = cache.resolved_store()
    if kind == "off":
        return NullStore()
    if kind == "memory":
        return InMemoryStore(max_entries=cache.max_entries, ttl=cache.ttl)
    if kind == "shared":
        if cache.shared_path is None:
            raise ConfigError("a shared outcome store needs cache.shared_path")
        return FileOutcomeStore(
            cache.shared_path, max_entries=cache.max_entries, ttl=cache.ttl
        )
    raise ConfigError(f"unknown outcome store kind {kind!r}")


__all__ = [
    "FileOutcomeStore",
    "InMemoryStore",
    "NullStore",
    "OutcomeStore",
    "StoreHit",
    "StoreStats",
    "build_store",
]
