"""Problem identity: the one key object behind every dedup layer.

Before this module existed, ``problem_key`` -- a bare tuple of
``(premises, conclusion, finite)`` -- was computed independently by the
batch memoizer, the async in-flight table and the service coalescer, each
with its own hit accounting and no way to share entries across processes
(dependency objects don't have stable cross-process hashes).

:class:`ProblemIdentity` replaces all of those call sites.  It carries

* ``cache_key`` -- a stable string the store indexes by: the syntactic
  digest in ``syntactic`` mode, the renaming-invariant canonical digest of
  :mod:`repro.model.canon` in ``canonical`` mode;
* ``fingerprint`` -- always the syntactic digest, so layers can classify a
  hit: same fingerprint means the exact problem was seen before
  (*syntactic* hit), different fingerprint under one cache key means a
  renamed twin was (*canonical* hit).

Identities compare and hash on ``(mode, cache_key)`` only, which is what
makes two isomorphic problems collide in every dedup table when canonical
mode is on.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Tuple

from repro.implication.problem import ImplicationProblem
from repro.model.canon import CanonicalizationError, canonical_key, syntactic_key

#: The identity modes a solver can run under (``CacheConfig.mode`` resolves
#: to one of these).
IDENTITY_MODES = ("syntactic", "canonical")


@dataclass(frozen=True, eq=False)
class ProblemIdentity:
    """The cache identity of one implication problem.

    Attributes
    ----------
    mode:
        ``"syntactic"`` or ``"canonical"`` -- the regime the key was
        computed under.  Part of equality, so one table never mixes keys
        of different regimes.
    cache_key:
        The stable string the stores index by (``s:...`` / ``c:...``).
    fingerprint:
        The syntactic digest of the problem exactly as written; used to
        classify hits as syntactic (same statement) or canonical (renamed
        twin), never for lookup in canonical mode.
    canonical_fallback:
        True when canonical mode was requested but the problem has no
        computable canonical form (unsupported dependency class or a
        symmetry blow-up); the identity then degrades to the syntactic
        key, which is always sound.
    """

    mode: str
    cache_key: str
    fingerprint: str
    canonical_fallback: bool = False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProblemIdentity):
            return NotImplemented
        return self.mode == other.mode and self.cache_key == other.cache_key

    def __hash__(self) -> int:
        return hash((self.mode, self.cache_key))


def identity_of(
    problem: ImplicationProblem,
    mode: str = "syntactic",
    context: tuple = (),
) -> ProblemIdentity:
    """Compute a problem's identity under the given mode.

    ``context`` scopes keys to a solving context (universe, budgets): two
    differently-configured solvers sharing one process-wide store must not
    serve each other's entries.  Canonical mode falls back to the
    syntactic key when no canonical form is computable.
    """
    if mode not in IDENTITY_MODES:
        raise ValueError(
            f"unknown identity mode {mode!r}; expected one of {IDENTITY_MODES}"
        )
    fingerprint = syntactic_key(problem, context)
    if mode == "canonical":
        try:
            return ProblemIdentity(
                "canonical", canonical_key(problem, context), fingerprint
            )
        except CanonicalizationError:
            return ProblemIdentity(
                "canonical", fingerprint, fingerprint, canonical_fallback=True
            )
    return ProblemIdentity("syntactic", fingerprint, fingerprint)


def problem_key(problem: ImplicationProblem) -> Tuple:
    """The legacy memoization key (deprecated).

    Kept so external callers of ``repro.api.problem_key`` keep working;
    the dedup layers themselves now route through :func:`identity_of`,
    whose string keys are stable across processes.
    """
    warnings.warn(
        "problem_key is deprecated; use repro.api.identity.identity_of "
        "(or Solver.identity) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return (problem.premises, problem.conclusion, problem.finite)


__all__ = ["IDENTITY_MODES", "ProblemIdentity", "identity_of", "problem_key"]
