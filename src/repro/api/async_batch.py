"""The asyncio batch front-end: :class:`AsyncSolver` / ``solve_many_async``.

:meth:`repro.api.Solver.solve_many` fans a batch out per call: each
invocation builds its own process pool, runs it to completion, and tears it
down.  Service-shaped traffic -- thousands of *independent* implication
queries arriving continuously -- wants the inverse: one long-lived worker
pool that every query multiplexes over, with backpressure instead of
unbounded fan-out.  :class:`AsyncSolver` provides exactly that:

* **one shared pool** -- a single :class:`~concurrent.futures.Executor`
  (by default a process pool, created lazily) serves every query for the
  front-end's lifetime, so pool start-up is paid once, not per batch;
* **semaphore backpressure** -- at most ``max_in_flight`` queries are
  dispatched to the pool at any moment; the rest await the semaphore, so a
  burst of 10k queries never swamps the pool's queue or the host's memory;
* **shared dedup/memoization** -- the same
  :class:`~repro.api.identity.ProblemIdentity` keying the synchronous
  batch path uses: solved outcomes come from (and feed) the wrapped
  solver's outcome store, and *concurrently* in-flight duplicates (in
  canonical mode, including renamed isomorphic twins) await one shared
  future instead of solving twice.

Every answer is byte-identical to :meth:`Solver.solve` -- the pool workers
rebuild the same solver from the same frozen config -- so the front-end is
purely a throughput/latency device.  In environments without worker
processes (sandboxes, ``processes=None``) it degrades to cooperative
sequential solving with the same answers.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import BrokenExecutor, Executor, ProcessPoolExecutor
from typing import TYPE_CHECKING, Optional, Sequence

from repro.api.batch import _solve_in_worker
from repro.implication.problem import ImplicationOutcome, ImplicationProblem
from repro.util.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.solver import Solver

#: Default bound on concurrently dispatched queries (the backpressure knob).
DEFAULT_MAX_IN_FLIGHT = 64


class AsyncSolverError(ReproError):
    """A misconfigured :class:`AsyncSolver`."""


class AsyncSolver:
    """An asyncio front-end multiplexing queries over one shared worker pool.

    Parameters
    ----------
    solver:
        The :class:`~repro.api.solver.Solver` answering the queries (its
        frozen config fixes every budget; its outcome cache is shared with
        the synchronous paths).  ``None`` builds a fresh solver from
        ``universe`` / ``config``.
    universe, config:
        Forwarded to :class:`~repro.api.solver.Solver` when ``solver`` is
        ``None``; passing them *alongside* a solver is an error.
    processes:
        Worker-pool size.  ``None`` or ``<= 1`` solves inline on the event
        loop (cooperative sequential mode -- same answers, no parallelism);
        ``> 1`` creates one lazy :class:`ProcessPoolExecutor` shared by
        every query until :meth:`close`.  Pool start-up failure (restricted
        environments) silently degrades to the inline mode.
    max_in_flight:
        Bound on concurrently dispatched queries; further ``solve`` calls
        await a semaphore.  This is what keeps ``solve_many`` over
        thousands of problems from swamping the pool queue.
    executor:
        An explicit :class:`~concurrent.futures.Executor` to dispatch to
        instead of an owned process pool (useful for tests and for sharing
        one pool across several front-ends).  The caller keeps ownership:
        :meth:`close` does not shut it down.

    One front-end serves one event loop at a time: the semaphore and the
    in-flight futures re-bind automatically when a new loop (a fresh
    ``asyncio.run``) takes over.
    """

    def __init__(
        self,
        solver: Optional["Solver"] = None,
        *,
        universe=None,
        config=None,
        processes: Optional[int] = None,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        executor: Optional[Executor] = None,
    ) -> None:
        if solver is None:
            from repro.api.solver import Solver

            solver = Solver(universe=universe, config=config)
        elif universe is not None or config is not None:
            raise AsyncSolverError(
                "pass either a ready Solver or universe/config, not both"
            )
        if max_in_flight < 1:
            raise AsyncSolverError("an AsyncSolver needs max_in_flight >= 1")
        self._solver = solver
        self._processes = processes
        self._max_in_flight = max_in_flight
        self._executor = executor
        self._owns_executor = executor is None
        self._pool_unavailable = False
        self._closed = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._gate: Optional[asyncio.Semaphore] = None
        self._in_flight: dict = {}

    # -- accessors -------------------------------------------------------------

    @property
    def solver(self) -> "Solver":
        """The wrapped solver (caches and stats are shared with it)."""
        return self._solver

    @property
    def max_in_flight(self) -> int:
        """The configured concurrency bound."""
        return self._max_in_flight

    # -- queries ---------------------------------------------------------------

    async def solve(self, problem: ImplicationProblem) -> ImplicationOutcome:
        """Solve one problem through the shared pool (or the caches).

        Identical problems are solved once: a memoized outcome returns
        immediately, and a problem currently being solved by another task
        is awaited instead of re-dispatched.  If that other task is
        *cancelled* mid-solve, one of its awaiters takes over as the new
        leader (a cancelled sibling never poisons the rest); real solver
        errors propagate to every awaiter.
        """
        if self._closed:
            raise RuntimeError(
                "this AsyncSolver is closed; create a new front-end "
                "(close() shut its worker pool down for good)"
            )
        identity = self._solver.identity(problem)
        while True:
            hit = self._solver.lookup(identity)
            if hit is not None:
                self._solver.stats.merge_run(
                    problems=1,
                    unique=0,
                    hits=1,
                    solved=0,
                    canonical_hits=int(hit.canonical),
                    syntactic_hits=int(not hit.canonical),
                )
                return hit.outcome
            loop, gate = self._bind_loop()
            pending = self._in_flight.get(identity)
            if pending is None:
                break
            shared, leader_fingerprint = pending
            try:
                # shield: cancelling THIS waiter must cancel only its own
                # await, never the shared future the leader will resolve.
                outcome = await asyncio.shield(shared)
            except asyncio.CancelledError:
                if shared.cancelled():
                    # The leader died of *its own* cancellation (it pops
                    # the key before cancelling the future); yield once so
                    # a done-future can never spin the loop, then retry as
                    # the new leader.
                    await asyncio.sleep(0)
                    continue
                raise  # this waiter was cancelled: honour it
            canonical = leader_fingerprint != identity.fingerprint
            self._solver.stats.merge_run(
                problems=1,
                unique=0,
                hits=1,
                solved=0,
                canonical_hits=int(canonical),
                syntactic_hits=int(not canonical),
            )
            return outcome
        future: asyncio.Future = loop.create_future()
        self._in_flight[identity] = (future, identity.fingerprint)
        try:
            async with gate:
                outcome = await self._dispatch(loop, problem)
        except BaseException as exc:
            self._in_flight.pop(identity, None)
            if not future.done():
                if isinstance(exc, asyncio.CancelledError):
                    future.cancel()
                else:
                    future.set_exception(exc)
                    # Mark retrieved: sibling awaiters re-raise through the
                    # future; without one, an unobserved exception would log.
                    future.exception()
            raise
        self._solver.seed_outcome(identity, outcome)
        self._in_flight.pop(identity, None)
        if not future.done():
            future.set_result(outcome)
        self._solver.stats.merge_run(problems=1, unique=1, hits=0, solved=1)
        return outcome

    async def solve_many(
        self, problems: Sequence[ImplicationProblem]
    ) -> list[ImplicationOutcome]:
        """Solve many problems concurrently; results align positionally.

        All queries are admitted at once and the semaphore meters them into
        the pool ``max_in_flight`` at a time, so the call scales to
        thousands of problems with bounded resource use.
        """
        return list(await asyncio.gather(*(self.solve(p) for p in problems)))

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut the owned worker pool down (idempotent and terminal).

        Injected executors are the caller's to close.  Safe to call from
        ``finally`` blocks (and to call twice): pending dispatches are
        cancelled, and the second call is a no-op.  A closed front-end is
        *done*: later ``solve`` / ``solve_many`` calls raise a clear
        ``RuntimeError`` instead of dying inside a torn-down executor or
        silently resurrecting a pool that nothing would shut down.
        """
        if self._closed:
            return
        self._closed = True
        self._pool_unavailable = True
        executor, self._executor = self._executor, None
        if executor is not None and self._owns_executor:
            executor.shutdown(wait=True, cancel_futures=True)

    async def __aenter__(self) -> "AsyncSolver":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- internals -------------------------------------------------------------

    def _bind_loop(self):
        """The running loop's semaphore/in-flight table (re-bound per loop)."""
        loop = asyncio.get_running_loop()
        if self._loop is not loop:
            self._loop = loop
            self._gate = asyncio.Semaphore(self._max_in_flight)
            self._in_flight = {}
        return loop, self._gate

    async def _dispatch(
        self, loop: asyncio.AbstractEventLoop, problem: ImplicationProblem
    ) -> ImplicationOutcome:
        executor = self._ensure_executor()
        if executor is None:
            # Cooperative sequential mode: solve inline, then yield so
            # sibling tasks (and their cache hits) interleave fairly.
            outcome = self._solver.solve(problem)
            await asyncio.sleep(0)
            return outcome
        payload = (self._solver.config, self._solver.universe, problem)
        try:
            return await loop.run_in_executor(executor, _solve_in_worker, payload)
        except (OSError, PermissionError, BrokenExecutor):
            # The pool died or the sandbox refused to fork: answers are
            # identical inline, so degrade for this and every later query
            # (injected executors are dropped but left for the owner to
            # shut down).
            self._pool_unavailable = True
            self._executor = None
            if self._owns_executor:
                executor.shutdown(wait=False, cancel_futures=True)
            return self._solver.solve(problem)

    def _ensure_executor(self) -> Optional[Executor]:
        if self._executor is not None:
            return self._executor
        if (
            self._pool_unavailable
            or not self._owns_executor
            or self._processes is None
            or self._processes <= 1
        ):
            return None
        try:
            self._executor = ProcessPoolExecutor(max_workers=self._processes)
        except (OSError, PermissionError, ImportError):
            self._pool_unavailable = True
            return None
        return self._executor
