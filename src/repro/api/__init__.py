"""``repro.api``: the recommended public surface of the library.

Three pieces:

* **config objects** (:class:`ChaseBudget`, :class:`FiniteSearchBudget`,
  :class:`SolverConfig`) -- frozen, hashable budgets replacing the historical
  keyword soup;
* **the dependency DSL** (:func:`parse_dependency`,
  :func:`parse_dependency_set`, :func:`describe_dependency`) -- compact text
  for fds, mvds, jds/pjds and tagged td/egd tableaux, with a parse/describe
  round-trip;
* **the solver facade** (:class:`Solver`) -- implication, finite implication,
  chasing, the paper's reduction pipelines, and the batch path
  :meth:`Solver.solve_many` with memoization and optional process fan-out;
* **the asyncio front-end** (:class:`AsyncSolver`,
  :meth:`Solver.solve_many_async`) -- thousands of independent queries
  multiplexed over one shared worker pool with semaphore backpressure,
  sharing the batch path's dedup/memoization;
* **problem identity and the outcome store** (:class:`ProblemIdentity`,
  :func:`identity_of`, :class:`OutcomeStore` and its in-memory / file-backed
  / null implementations) -- the pluggable caching layer every dedup path
  keys on, with an isomorphism-invariant *canonical* mode that collapses
  renamed statements of the same problem into one cache entry.

Quickstart::

    from repro.api import Solver

    solver = Solver(universe="ABC")
    outcome = solver.implies(["A -> B"], "A ->> B")
    assert outcome.is_implied()
    print(outcome.to_dict())
"""

from repro.api.async_batch import (
    DEFAULT_MAX_IN_FLIGHT,
    AsyncSolver,
    AsyncSolverError,
)
from repro.api.batch import BatchRunStats, BatchStats, solve_problems
from repro.api.dsl import (
    DSLError,
    describe_dependency,
    describe_dependency_set,
    parse_attribute_set,
    parse_dependency,
    parse_dependency_set,
)
from repro.api.identity import ProblemIdentity, identity_of, problem_key
from repro.api.solver import Solver, solve_one
from repro.api.store import (
    FileOutcomeStore,
    InMemoryStore,
    NullStore,
    OutcomeStore,
    StoreHit,
    StoreStats,
    build_store,
)
from repro.config import (
    CACHE_MODES,
    CACHE_STORES,
    CHASE_STRATEGIES,
    CHECKPOINT_MODES,
    CacheConfig,
    ChaseBudget,
    CheckpointConfig,
    ConfigError,
    FiniteSearchBudget,
    SolverConfig,
)
from repro.model.canon import (
    CanonicalizationError,
    canonical_key,
    syntactic_key,
)
from repro.implication.problem import ImplicationOutcome, ImplicationProblem, Verdict

__all__ = [
    "Solver",
    "solve_one",
    "AsyncSolver",
    "AsyncSolverError",
    "DEFAULT_MAX_IN_FLIGHT",
    "BatchRunStats",
    "BatchStats",
    "problem_key",
    "solve_problems",
    "ProblemIdentity",
    "identity_of",
    "OutcomeStore",
    "InMemoryStore",
    "FileOutcomeStore",
    "NullStore",
    "StoreHit",
    "StoreStats",
    "build_store",
    "CanonicalizationError",
    "canonical_key",
    "syntactic_key",
    "DSLError",
    "describe_dependency",
    "describe_dependency_set",
    "parse_attribute_set",
    "parse_dependency",
    "parse_dependency_set",
    "CACHE_MODES",
    "CACHE_STORES",
    "CHASE_STRATEGIES",
    "CHECKPOINT_MODES",
    "CacheConfig",
    "ChaseBudget",
    "CheckpointConfig",
    "ConfigError",
    "FiniteSearchBudget",
    "SolverConfig",
    "ImplicationOutcome",
    "ImplicationProblem",
    "Verdict",
]
