"""The batch solving path behind :meth:`repro.api.Solver.solve_many`.

Implication workloads are heavily repetitive: schema-design loops probe many
conclusions against one premise set, and service traffic re-asks identical
queries.  The batch path exploits both shapes without changing any answer:

* **outcome memoization** -- problems are deduplicated on
  ``(premises, conclusion, finite)`` (the solver's frozen
  :class:`~repro.config.SolverConfig` fixes the budgets), so each distinct
  problem is chased exactly once per solver;
* **shared normalisation** -- the solver threads one premise cache through
  its :class:`~repro.implication.engine.ImplicationEngine`, so a premise set
  shared by many problems is converted to chase primitives only once;
* **optional fan-out** -- distinct problems can be dispatched to a process
  pool.  Verdicts are unaffected, but tie-breaking inside the chase follows
  per-process hash ordering, so counterexample *presentation* may differ
  from a sequential run; leave ``processes=None`` when byte-identical
  outcomes matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.implication.problem import ImplicationOutcome, ImplicationProblem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.solver import Solver


@dataclass(frozen=True)
class BatchRunStats:
    """The dedup/memoization outcome of one ``solve_many`` run.

    ``cache_hits`` counts every problem occurrence served without a solve:
    repeats deduplicated within the run plus hits on the solver's outcome
    cache.  The service's metrics endpoint consumes these per-run numbers;
    they are equally useful standalone when tuning a batch workload.
    """

    problems: int
    unique_problems: int
    cache_hits: int
    solved: int

    @property
    def hit_rate(self) -> float:
        """Fraction of occurrences served from a cache (0.0 on empty runs)."""
        return self.cache_hits / self.problems if self.problems else 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot."""
        return {
            "problems": self.problems,
            "unique_problems": self.unique_problems,
            "cache_hits": self.cache_hits,
            "solved": self.solved,
            "hit_rate": self.hit_rate,
        }


@dataclass
class BatchStats:
    """Counters describing how much work a batch actually performed.

    The four counters are lifetime accumulations across every run the owning
    solver performed; ``last_run`` keeps the most recent run's own numbers
    (the asyncio front-end records each query as a run of one).
    """

    problems: int = 0
    unique_problems: int = 0
    cache_hits: int = 0
    solved: int = 0
    runs: int = 0
    last_run: Optional[BatchRunStats] = field(default=None, compare=False)

    def merge_run(
        self, problems: int, unique: int, hits: int, solved: int
    ) -> BatchRunStats:
        """Accumulate one run into the lifetime counters and snapshot it."""
        self.problems += problems
        self.unique_problems += unique
        self.cache_hits += hits
        self.solved += solved
        self.runs += 1
        run = BatchRunStats(
            problems=problems,
            unique_problems=unique,
            cache_hits=hits,
            solved=solved,
        )
        self.last_run = run
        return run

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of occurrences served from a cache."""
        return self.cache_hits / self.problems if self.problems else 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (the service metrics embed it)."""
        payload = {
            "problems": self.problems,
            "unique_problems": self.unique_problems,
            "cache_hits": self.cache_hits,
            "solved": self.solved,
            "runs": self.runs,
            "hit_rate": self.hit_rate,
        }
        if self.last_run is not None:
            payload["last_run"] = self.last_run.to_dict()
        return payload


def problem_key(problem: ImplicationProblem) -> tuple:
    """The memoization key of a problem (budgets are fixed per solver)."""
    return (problem.premises, problem.conclusion, problem.finite)


def _solve_in_worker(payload) -> ImplicationOutcome:
    """Process-pool entry point: rebuild a solver and solve one problem.

    Top-level (hence picklable) on purpose.  Each worker gets the parent
    solver's config and universe, so budgets and dispatch are identical to a
    sequential run.
    """
    from repro.api.solver import Solver

    config, universe, problem = payload
    return Solver(universe=universe, config=config).solve(problem)


def solve_problems(
    solver: "Solver",
    problems: Sequence[ImplicationProblem],
    processes: Optional[int] = None,
) -> list[ImplicationOutcome]:
    """Solve many problems, deduplicating and memoizing shared work.

    Results are positionally aligned with ``problems``.  With
    ``processes > 1`` the distinct uncached problems are fanned out across a
    process pool; any pool start-up failure (restricted environments) falls
    back to the sequential path silently, since answers are identical.
    """
    keys = [problem_key(p) for p in problems]
    results: dict[tuple, ImplicationOutcome] = {}
    fresh: dict[tuple, ImplicationProblem] = {}
    for key, problem in zip(keys, problems):
        if key in results or key in fresh:
            continue
        cached = solver.cached_outcome(key)
        if cached is not None:
            results[key] = cached
        else:
            fresh[key] = problem
    # Every occurrence that does not trigger a solve is served from a cache
    # (the solver's outcome cache, or this run's dedup of repeated problems).
    hits = len(problems) - len(fresh)

    if processes is not None and processes > 1 and len(fresh) > 1:
        results.update(_solve_fresh_in_pool(solver, fresh, processes))
    else:
        for key, problem in fresh.items():
            results[key] = solver.solve(problem)

    solver.stats.merge_run(
        problems=len(problems),
        unique=len(fresh),
        hits=hits,
        solved=len(fresh),
    )
    return [results[key] for key in keys]


def _solve_fresh_in_pool(
    solver: "Solver",
    fresh: dict[tuple, ImplicationProblem],
    processes: int,
) -> dict[tuple, ImplicationOutcome]:
    """Fan distinct problems out to a process pool, seeding the solver's cache.

    The pool is torn down in a ``finally`` with pending work cancelled, so a
    ``KeyboardInterrupt`` (or a worker crash) mid-batch never leaves orphaned
    worker processes behind -- the interrupt still propagates to the caller.
    """
    pool = None
    try:
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (solver.config, solver.universe, problem) for problem in fresh.values()
        ]
        pool = ProcessPoolExecutor(max_workers=processes)
        outcomes = list(pool.map(_solve_in_worker, payloads))
    except (OSError, PermissionError, ImportError):
        # Sandboxes without process spawning: answers are identical either
        # way, so degrade to the sequential path.
        return {key: solver.solve(problem) for key, problem in fresh.items()}
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    results = dict(zip(fresh.keys(), outcomes))
    for key, outcome in results.items():
        solver.seed_outcome(key, outcome)
    return results
