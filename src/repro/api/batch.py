"""The batch solving path behind :meth:`repro.api.Solver.solve_many`.

Implication workloads are heavily repetitive: schema-design loops probe many
conclusions against one premise set, and service traffic re-asks identical
queries.  The batch path exploits both shapes without changing any answer:

* **outcome memoization** -- problems are deduplicated on their
  :class:`~repro.api.identity.ProblemIdentity` (the solver's frozen
  :class:`~repro.config.SolverConfig` fixes the budgets and picks the
  syntactic or canonical identity mode), so each distinct problem is
  chased exactly once per solver -- and, in canonical mode, renamed
  isomorphic statements of one problem share a single solve;
* **shared normalisation** -- the solver threads one premise cache through
  its :class:`~repro.implication.engine.ImplicationEngine`, so a premise set
  shared by many problems is converted to chase primitives only once;
* **optional fan-out** -- distinct problems can be dispatched to a process
  pool.  Verdicts are unaffected, but tie-breaking inside the chase follows
  per-process hash ordering, so counterexample *presentation* may differ
  from a sequential run; leave ``processes=None`` when byte-identical
  outcomes matter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence

from repro.api.identity import ProblemIdentity, problem_key  # noqa: F401  (re-export)
from repro.implication.problem import ImplicationOutcome, ImplicationProblem

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.solver import Solver


@dataclass(frozen=True)
class BatchRunStats:
    """The dedup/memoization outcome of one ``solve_many`` run.

    ``cache_hits`` counts every problem occurrence served without a solve:
    repeats deduplicated within the run plus hits on the solver's outcome
    store.  ``canonical_hits`` are the hits earned purely by canonical
    identity (a differently-named isomorphic twin was cached);
    ``syntactic_hits`` are hits on the exact statement; the two sum to
    ``cache_hits``.  ``evictions`` counts store entries evicted during the
    run (LRU pressure or TTL expiry).  The service's metrics endpoint
    consumes these per-run numbers; they are equally useful standalone
    when tuning a batch workload.
    """

    problems: int
    unique_problems: int
    cache_hits: int
    solved: int
    canonical_hits: int = 0
    syntactic_hits: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of occurrences served from a cache (0.0 on empty runs)."""
        return self.cache_hits / self.problems if self.problems else 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (inverse of :meth:`from_dict`)."""
        return {
            "problems": self.problems,
            "unique_problems": self.unique_problems,
            "cache_hits": self.cache_hits,
            "solved": self.solved,
            "canonical_hits": self.canonical_hits,
            "syntactic_hits": self.syntactic_hits,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchRunStats":
        """Rebuild a run snapshot from :meth:`to_dict` output."""
        return cls(
            problems=payload.get("problems", 0),
            unique_problems=payload.get("unique_problems", 0),
            cache_hits=payload.get("cache_hits", 0),
            solved=payload.get("solved", 0),
            canonical_hits=payload.get("canonical_hits", 0),
            syntactic_hits=payload.get("syntactic_hits", 0),
            evictions=payload.get("evictions", 0),
        )


@dataclass
class BatchStats:
    """Counters describing how much work a batch actually performed.

    The four counters are lifetime accumulations across every run the owning
    solver performed; ``last_run`` keeps the most recent run's own numbers
    (the asyncio front-end records each query as a run of one).
    """

    problems: int = 0
    unique_problems: int = 0
    cache_hits: int = 0
    solved: int = 0
    canonical_hits: int = 0
    syntactic_hits: int = 0
    evictions: int = 0
    runs: int = 0
    last_run: Optional[BatchRunStats] = field(default=None, compare=False)

    def merge_run(
        self,
        problems: int,
        unique: int,
        hits: int,
        solved: int,
        canonical_hits: int = 0,
        syntactic_hits: int = 0,
        evictions: int = 0,
    ) -> BatchRunStats:
        """Accumulate one run into the lifetime counters and snapshot it."""
        self.problems += problems
        self.unique_problems += unique
        self.cache_hits += hits
        self.solved += solved
        self.canonical_hits += canonical_hits
        self.syntactic_hits += syntactic_hits
        self.evictions += evictions
        self.runs += 1
        run = BatchRunStats(
            problems=problems,
            unique_problems=unique,
            cache_hits=hits,
            solved=solved,
            canonical_hits=canonical_hits,
            syntactic_hits=syntactic_hits,
            evictions=evictions,
        )
        self.last_run = run
        return run

    @property
    def hit_rate(self) -> float:
        """Lifetime fraction of occurrences served from a cache."""
        return self.cache_hits / self.problems if self.problems else 0.0

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot (the service metrics embed it)."""
        payload = {
            "problems": self.problems,
            "unique_problems": self.unique_problems,
            "cache_hits": self.cache_hits,
            "solved": self.solved,
            "canonical_hits": self.canonical_hits,
            "syntactic_hits": self.syntactic_hits,
            "evictions": self.evictions,
            "runs": self.runs,
            "hit_rate": self.hit_rate,
        }
        if self.last_run is not None:
            payload["last_run"] = self.last_run.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "BatchStats":
        """Rebuild lifetime counters from :meth:`to_dict` output."""
        stats = cls(
            problems=payload.get("problems", 0),
            unique_problems=payload.get("unique_problems", 0),
            cache_hits=payload.get("cache_hits", 0),
            solved=payload.get("solved", 0),
            canonical_hits=payload.get("canonical_hits", 0),
            syntactic_hits=payload.get("syntactic_hits", 0),
            evictions=payload.get("evictions", 0),
            runs=payload.get("runs", 0),
        )
        if "last_run" in payload:
            stats.last_run = BatchRunStats.from_dict(payload["last_run"])
        return stats


def _solve_in_worker(payload) -> ImplicationOutcome:
    """Process-pool entry point: rebuild a solver and solve one problem.

    Top-level (hence picklable) on purpose.  Each worker gets the parent
    solver's config and universe, so budgets and dispatch are identical to a
    sequential run.
    """
    from repro.api.solver import Solver

    config, universe, problem = payload
    return Solver(universe=universe, config=config).solve(problem)


def solve_problems(
    solver: "Solver",
    problems: Sequence[ImplicationProblem],
    processes: Optional[int] = None,
    deadline: Optional[float] = None,
) -> list[ImplicationOutcome]:
    """Solve many problems, deduplicating and memoizing shared work.

    Results are positionally aligned with ``problems``.  With
    ``processes > 1`` the distinct uncached problems are fanned out across a
    process pool; any pool start-up failure (restricted environments) falls
    back to the sequential path silently, since answers are identical.

    ``deadline`` (an absolute ``time.monotonic()`` instant) is threaded into
    each sequential solve so the chase itself stops at the next round
    boundary once the instant passes; the pool path ignores it, since a
    monotonic instant is meaningless in another process.
    """
    identities = [solver.identity(p) for p in problems]
    results: Dict[ProblemIdentity, ImplicationOutcome] = {}
    fresh: Dict[ProblemIdentity, ImplicationProblem] = {}
    first_fingerprint: Dict[ProblemIdentity, str] = {}
    canonical_hits = 0
    syntactic_hits = 0
    evictions_before = solver.store.stats.evictions
    for identity, problem in zip(identities, problems):
        if identity in results or identity in fresh:
            # An in-run duplicate: a renamed twin of the first occurrence
            # counts as a canonical hit, a repeat of the same statement as
            # a syntactic one.
            if identity.fingerprint != first_fingerprint[identity]:
                canonical_hits += 1
            else:
                syntactic_hits += 1
            continue
        first_fingerprint[identity] = identity.fingerprint
        hit = solver.lookup(identity)
        if hit is not None:
            results[identity] = hit.outcome
            if hit.canonical:
                canonical_hits += 1
            else:
                syntactic_hits += 1
        else:
            fresh[identity] = problem
    # Every occurrence that does not trigger a solve is served from a cache
    # (the solver's outcome store, or this run's dedup of repeated problems).
    hits = len(problems) - len(fresh)

    if processes is not None and processes > 1 and len(fresh) > 1:
        results.update(_solve_fresh_in_pool(solver, fresh, processes))
    else:
        for identity, problem in fresh.items():
            results[identity] = solver.solve(problem, deadline=deadline)

    solver.stats.merge_run(
        problems=len(problems),
        unique=len(fresh),
        hits=hits,
        solved=len(fresh),
        canonical_hits=canonical_hits,
        syntactic_hits=syntactic_hits,
        evictions=solver.store.stats.evictions - evictions_before,
    )
    return [results[identity] for identity in identities]


def _solve_fresh_in_pool(
    solver: "Solver",
    fresh: "Dict[ProblemIdentity, ImplicationProblem]",
    processes: int,
) -> "Dict[ProblemIdentity, ImplicationOutcome]":
    """Fan distinct problems out to a process pool, seeding the solver's cache.

    The pool is torn down in a ``finally`` with pending work cancelled, so a
    ``KeyboardInterrupt`` (or a worker crash) mid-batch never leaves orphaned
    worker processes behind -- the interrupt still propagates to the caller.
    """
    pool = None
    try:
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (solver.config, solver.universe, problem) for problem in fresh.values()
        ]
        pool = ProcessPoolExecutor(max_workers=processes)
        outcomes = list(pool.map(_solve_in_worker, payloads))
    except (OSError, PermissionError, ImportError):
        # Sandboxes without process spawning: answers are identical either
        # way, so degrade to the sequential path.
        return {identity: solver.solve(problem) for identity, problem in fresh.items()}
    finally:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    results = dict(zip(fresh.keys(), outcomes))
    for identity, outcome in results.items():
        solver.seed_outcome(identity, outcome)
    return results
