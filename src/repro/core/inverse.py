"""Lemma 3: the inverse translation ``T^-1`` on typed counterexample relations.

A typed counterexample to ``T(Sigma) |= T(sigma)`` need not literally be of
the form ``T(I)`` -- it merely satisfies the structural dependencies
``Sigma_0``.  Lemma 3 shows that enough structure survives to *decode* it:

1. values are grouped by the equivalence ``d == e`` iff some row ``u`` with
   ``u[D] = d0`` carries both ``d`` and ``e`` among its ABC-components
   (such a row "looks like ``N(c)``", so its three components name the same
   untyped element);  the structural fds make this an equivalence relation;
2. an untyped tuple is extracted from every row that "looks like ``T(w)``"
   (E-component ``e0``, the designated F-marker) and whose three components
   are each certified by an ``N``-looking row.

The construction is parameterised by the images of the constants
``d0, e0, f1`` under the counterexample valuation (the paper normalises
``alpha(s) = s``; the library accepts explicit markers so it can also be
applied to relations where the sentinel was renamed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.sigma0 import STRUCTURAL_FDS
from repro.core.translation import A, B, C, D, D0, E, E0, F, F1, TYPED_UNIVERSE
from repro.core.untyped import UNTYPED_UNIVERSE
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value, untyped
from repro.util.errors import TranslationError
from repro.util.fresh import FreshSupply


@dataclass(frozen=True)
class InverseMarkers:
    """The images of the constants ``d0``, ``e0`` and ``f1`` in the typed relation."""

    d0: Value = D0
    e0: Value = E0
    f1: Value = F1


class ValuePartition:
    """Union-find over the values of the typed relation (the ``==`` of Lemma 3)."""

    def __init__(self) -> None:
        self._parent: Dict[Value, Value] = {}

    def find(self, value: Value) -> Value:
        root = value
        seen = []
        while root in self._parent:
            seen.append(root)
            root = self._parent[root]
        for node in seen:
            self._parent[node] = root
        return root

    def union(self, left: Value, right: Value) -> None:
        left_root = self.find(left)
        right_root = self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root

    def same(self, left: Value, right: Value) -> bool:
        return self.find(left) == self.find(right)


def value_equivalence(
    typed_relation: Relation, markers: InverseMarkers
) -> ValuePartition:
    """The Lemma 3 equivalence on ``VAL(I')``.

    ``d == e`` iff ``d = e`` or some row with D-component ``d0`` carries both
    among its A, B, C components.  Transitivity is a consequence of the
    structural fds, which the caller is expected to have verified.
    """
    partition = ValuePartition()
    for row in typed_relation:
        if row[D] != markers.d0:
            continue
        values = [row[A], row[B], row[C]]
        for value in values[1:]:
            partition.union(values[0], value)
    return partition


def t_inverse(
    typed_relation: Relation,
    markers: Optional[InverseMarkers] = None,
    check_structure: bool = True,
) -> Relation:
    """``T^-1(I')``: decode a typed relation into an untyped one (Lemma 3).

    Parameters
    ----------
    typed_relation:
        A typed relation over ``ABCDEF`` satisfying the structural fds of
        ``Sigma_0`` (validated when ``check_structure`` is true).
    markers:
        The images of ``d0``, ``e0``, ``f1``; defaults to the literal
        constants, which is the paper's "assume alpha(s) = s" normalisation.
    check_structure:
        Verify the Lemma 1 fds before decoding; the decoding is only
        guaranteed to be meaningful for relations that satisfy them.
    """
    if typed_relation.universe != TYPED_UNIVERSE:
        raise TranslationError("T^-1 expects a relation over the typed universe ABCDEF")
    markers = markers or InverseMarkers()
    if check_structure:
        for fd in STRUCTURAL_FDS:
            if not fd.satisfied_by(typed_relation):
                raise TranslationError(
                    f"the typed relation violates the structural fd {fd.describe()}; "
                    "T^-1 is only defined on relations satisfying Sigma_0's fds"
                )

    partition = value_equivalence(typed_relation, markers)

    # A canonical untyped name per equivalence class.
    supply = FreshSupply(prefix="x")
    class_names: Dict[Value, Value] = {}

    def name_of(value: Value) -> Value:
        root = partition.find(value)
        if root not in class_names:
            class_names[root] = untyped(supply.next())
        return class_names[root]

    # Index the N-looking rows by their A, B and C components.
    n_rows_by_a: Dict[Value, Row] = {}
    n_rows_by_b: Dict[Value, Row] = {}
    n_rows_by_c: Dict[Value, Row] = {}
    for row in typed_relation:
        if row[D] == markers.d0 and row[F] == markers.f1:
            n_rows_by_a[row[A]] = row
            n_rows_by_b[row[B]] = row
            n_rows_by_c[row[C]] = row

    untyped_rows = []
    for row in typed_relation:
        if row[E] != markers.e0 or row[F] != markers.f1:
            continue
        if row[A] not in n_rows_by_a:
            continue
        if row[B] not in n_rows_by_b:
            continue
        if row[C] not in n_rows_by_c:
            continue
        untyped_rows.append(
            Row(
                {
                    UNTYPED_UNIVERSE.attributes[0]: name_of(row[A]),
                    UNTYPED_UNIVERSE.attributes[1]: name_of(row[B]),
                    UNTYPED_UNIVERSE.attributes[2]: name_of(row[C]),
                }
            )
        )
    if not untyped_rows:
        raise TranslationError(
            "the typed relation contains no decodable T-looking row; "
            "T^-1 yields an empty relation, which the paper's relations exclude"
        )
    return Relation(UNTYPED_UNIVERSE, untyped_rows)


def decoded_equality(
    typed_relation: Relation,
    left: Value,
    right: Value,
    markers: Optional[InverseMarkers] = None,
) -> bool:
    """Whether two typed values decode to the same untyped element.

    Used when transporting an egd counterexample back through ``T^-1``: the
    equality ``a^1 = b^1`` fails in the untyped decoding iff the two values
    fall in different classes of the Lemma 3 equivalence.
    """
    markers = markers or InverseMarkers()
    partition = value_equivalence(typed_relation, markers)
    return partition.same(left, right)
