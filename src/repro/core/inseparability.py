"""Theorems 3 and 4: fixed premise sets and recursive inseparability scaffolding.

Theorem 3 produces a *fixed* set ``Sigma_1`` of untyped A'B'-total tds and
egds (containing ``A'B' -> C'``) such that the egds implied by ``Sigma_1``
and the egds finitely refuted by it are recursively inseparable; Theorem 4
transports this through the Section 4 reduction to typed sets ``Sigma_2``
(tds + egds) and ``Sigma_3`` (tds only).  The corollary -- undecidability of
the implication problem *for the fixed set* ``Sigma_3`` -- and Theorem 5 --
no finite Armstrong relation for ``Sigma_2`` -- both hang off these sets.

What can be executed: the sets themselves (built from the semigroup
encoding, whose premise part is instance-independent), the per-instance egd
queries, and the transport of verdicts between the semigroup world and the
dependency world on instances small enough to certify.  The inseparability
statement is, of course, a meta-theorem about all of them at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.dep_translation import TypedDependency, t_egd, t_set
from repro.core.untyped import AB_TO_C, UntypedDependency
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.semigroups.encoding import (
    EncodedInstance,
    encode_instance,
    semigroup_premises,
)
from repro.semigroups.presentation import WordProblemInstance
from repro.semigroups.rewriting import classify_instance


def sigma_1(include_totality: bool = True) -> list[UntypedDependency]:
    """The fixed untyped premise set ``Sigma_1`` of Theorem 3.

    It consists of the instance-independent semigroup axioms (functionality
    -- which is the fd ``A'B' -> C'`` -- associativity, totality) written as
    A'B'-total untyped tds and egds, plus the fd itself in fd form so the
    Theorem 1 shape-check recognises condition (2).
    """
    return [*semigroup_premises(include_totality), AB_TO_C]


def sigma_2(include_totality: bool = True) -> list[TypedDependency]:
    """The fixed typed td/egd set ``Sigma_2 = T(Sigma_1) union Sigma_0`` of Theorem 4(1)."""
    return t_set(sigma_1(include_totality))


@dataclass(frozen=True)
class InseparabilityQuery:
    """One query against the fixed set: an egd built from a word-problem instance."""

    instance: WordProblemInstance
    encoded: EncodedInstance
    untyped_query: EqualityGeneratingDependency
    typed_query: EqualityGeneratingDependency
    semigroup_verdict: Optional[bool]

    def expected_implied(self) -> Optional[bool]:
        """The semigroup-side ground truth, when the bounded tools could certify it."""
        return self.semigroup_verdict


def build_query(
    instance: WordProblemInstance, include_totality: bool = True
) -> InseparabilityQuery:
    """Build the Theorem 3/4 query egd for a word-problem instance.

    The *premises* are always the fixed ``Sigma_1`` / ``Sigma_2``; only the
    queried egd varies with the instance, which is exactly the shape of the
    theorems ("the set of egds sigma with Sigma |= sigma ...").
    """
    encoded = encode_instance(instance, include_totality=include_totality)
    return InseparabilityQuery(
        instance=instance,
        encoded=encoded,
        untyped_query=encoded.conclusion,
        typed_query=t_egd(encoded.conclusion),
        semigroup_verdict=classify_instance(instance),
    )


def queries_for(
    instances: Sequence[WordProblemInstance], include_totality: bool = True
) -> list[InseparabilityQuery]:
    """Build queries for a batch of instances (used by the benchmark harness)."""
    return [build_query(instance, include_totality) for instance in instances]
