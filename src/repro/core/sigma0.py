"""The structural typed dependencies Sigma_0 (Section 4, Lemmas 1 and 4).

``T(I)`` is a very specific kind of typed relation.  The reduction captures
just enough of that structure with dependencies:

* the functional dependencies of Lemma 1:
  ``AD -> U``, ``BD -> U``, ``CD -> U``, ``ABCE -> U``;
* the typed td ``sigma_0`` stating "if ``T((a,b,c))``, ``N(a)`` and ``N(b)``
  are present then so is ``N(c)``" (the weaker, td-expressible form of
  "every ``T``-row is accompanied by its ``N``-rows").

``Sigma_0`` is the union of the two.  Lemma 1 says ``T(I)`` always satisfies
the fds; Lemma 4 says it satisfies ``sigma_0`` provided ``I |= A'B' -> C'``,
which is exactly what condition (2) of Theorem 1 guarantees.
"""

from __future__ import annotations

from typing import Union

from repro.core.translation import (
    A,
    B,
    C,
    D,
    D0,
    E,
    E0,
    F,
    F1,
    SENTINEL,
    TYPED_UNIVERSE,
    t_relation,
)
from repro.core.untyped import AB_TO_C, require_untyped
from repro.dependencies.base import Dependency
from repro.dependencies.fd import FunctionalDependency, key_dependency
from repro.dependencies.td import TemplateDependency
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value

#: Lemma 1's functional dependencies.
FD_AD = key_dependency(TYPED_UNIVERSE, [A, D])
FD_BD = key_dependency(TYPED_UNIVERSE, [B, D])
FD_CD = key_dependency(TYPED_UNIVERSE, [C, D])
FD_ABCE = key_dependency(TYPED_UNIVERSE, [A, B, C, E])

#: The Lemma 4 helper fd used inside its proof (not itself part of Sigma_0).
FD_ABE = key_dependency(TYPED_UNIVERSE, [A, B, E])

STRUCTURAL_FDS: tuple[FunctionalDependency, ...] = (FD_AD, FD_BD, FD_CD, FD_ABCE)


def _v(name: str, attribute) -> Value:
    return Value(name, attribute.name)


def sigma_0() -> TemplateDependency:
    """The typed td ``sigma_0 = (w_0, I_0)`` exactly as printed in Section 4.

    Body ``I_0 = {s, w_1, w_2, w_3}``::

             A    B    C    D    E    F
        s    a0   b0   c0   d0   e0   f0
        w_1  a1   b2   c3   d1   e0   f1
        w_2  a1   a2   a3   d0   e1   f1
        w_3  b1   b2   b3   d0   e2   f1

    Conclusion ``w_0 = (c1, c2, c3, d0, e3, f1)``.  Row ``w_1`` plays the
    role of ``T((a, b, c))``, ``w_2`` of ``N(a)``, ``w_3`` of ``N(b)`` and
    the conclusion of ``N(c)``.
    """
    w1 = Row(
        {A: _v("a1", A), B: _v("b2", B), C: _v("c3", C), D: _v("d1", D), E: E0, F: F1}
    )
    w2 = Row(
        {A: _v("a1", A), B: _v("a2", B), C: _v("a3", C), D: D0, E: _v("e1", E), F: F1}
    )
    w3 = Row(
        {A: _v("b1", A), B: _v("b2", B), C: _v("b3", C), D: D0, E: _v("e2", E), F: F1}
    )
    body = Relation(TYPED_UNIVERSE, [SENTINEL, w1, w2, w3])
    conclusion = Row(
        {A: _v("c1", A), B: _v("c2", B), C: _v("c3", C), D: D0, E: _v("e3", E), F: F1}
    )
    return TemplateDependency(conclusion, body, name="sigma_0")


SIGMA_0 = sigma_0()

#: ``Sigma_0 = {sigma_0, AD -> U, BD -> U, CD -> U, ABCE -> U}``.
SIGMA_0_SET: tuple[Union[TemplateDependency, FunctionalDependency], ...] = (
    SIGMA_0,
    *STRUCTURAL_FDS,
)


def lemma1_holds(untyped_relation: Relation) -> bool:
    """Check Lemma 1 on a concrete untyped relation: ``T(I)`` satisfies the fds."""
    require_untyped(untyped_relation)
    typed_image = t_relation(untyped_relation)
    return all(fd.satisfied_by(typed_image) for fd in STRUCTURAL_FDS)


def lemma4_holds(untyped_relation: Relation) -> bool:
    """Check Lemma 4 on a concrete untyped relation.

    If ``I |= A'B' -> C'`` then ``T(I) |= sigma_0``.  The function evaluates
    both sides and returns whether the implication is respected (it is, for
    every input -- that is Lemma 4; the test-suite asserts it on many random
    instances).
    """
    require_untyped(untyped_relation)
    if not AB_TO_C.satisfied_by(untyped_relation):
        return True
    typed_image = t_relation(untyped_relation)
    return SIGMA_0.satisfied_by(typed_image)


def satisfies_sigma0_set(typed_relation: Relation) -> bool:
    """Whether a typed relation satisfies all of ``Sigma_0``."""
    return all(dependency.satisfied_by(typed_relation) for dependency in SIGMA_0_SET)


def structural_violations(typed_relation: Relation) -> list[Dependency]:
    """The members of ``Sigma_0`` violated by a typed relation (for diagnostics)."""
    return [d for d in SIGMA_0_SET if not d.satisfied_by(typed_relation)]
