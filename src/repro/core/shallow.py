"""Section 6: the shallow-td translation over the blown-up universe.

Given tds over a universe ``U``, let ``m`` be the largest body size and
``n = m(m-1)/2``.  The blown-up universe is
``U_hat = {A_i : A in U, 0 <= i <= n}``; the A_0-columns carry the original
values and the remaining columns spread the equality pattern of each body
column over ``n`` fresh columns so that no column of the translated body
repeats more than one value -- the translated td is *shallow*, hence (by
Lemma 6) a projected join dependency.

The module implements:

* :func:`pair_index` -- the fixed enumeration of unordered pairs
  ``{i, j}  (1 <= i < j <= m)`` used by the translation;
* :func:`shallow_translation` -- ``theta -> theta_hat`` (Example 3);
* :func:`hat_relation` -- the relation transport ``I -> I_hat`` used in
  Lemma 8's proof (duplicating every value ``n + 1`` times);
* :func:`unhat_relation` -- the reverse transport (projection onto the
  A_0-columns, with a renaming into ``U``);
* :func:`index_fds` / :func:`index_mvds` -- the dependencies
  ``A_i -> A_j`` and ``A_i ->> A_j`` that tie the copies together
  (Lemmas 8 and 10);
* :func:`lemma8_translation` -- the full premise/conclusion translation of
  Lemma 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.td import TemplateDependency
from repro.model.attributes import Attribute, Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import TranslationError
from repro.util.fresh import FreshSupply


def pair_index(m: int) -> dict[frozenset[int], int]:
    """A fixed enumeration of the unordered pairs ``{i, j}``, ``1 <= i < j <= m``.

    The enumeration is lexicographic: ``{1,2} -> 1, {1,3} -> 2, ...,
    {1,m} -> m-1, {2,3} -> m, ...``; Example 3 (``m = 3``) uses exactly this
    order (``A_{1,2} = A_1, A_{1,3} = A_2, A_{2,3} = A_3``).
    """
    index: dict[frozenset[int], int] = {}
    counter = 0
    for i in range(1, m + 1):
        for j in range(i + 1, m + 1):
            counter += 1
            index[frozenset((i, j))] = counter
    return index


def blowup_count(m: int) -> int:
    """``n = m(m-1)/2``."""
    return m * (m - 1) // 2


def blown_up_universe(universe: Universe, m: int) -> Universe:
    """``U_hat = {A_i : A in U, 0 <= i <= n}`` with ``n = m(m-1)/2``."""
    return universe.blown_up(blowup_count(m))


def _indexed_value(attribute: Attribute, index: int, k: Union[int, str]) -> Value:
    """The domain element ``(A_index, k)`` written as a typed value."""
    return Value(str(k), attribute.indexed(index).name)


def _padded_body(td: TemplateDependency, m: int) -> list[Row]:
    """The body rows ``w_1, ..., w_m``, padded with fresh-value rows if needed.

    Padding a td's body with rows of entirely fresh values does not change
    its meaning (the fresh rows embed anywhere), and lets every td in a set
    share the same ``m`` as the paper assumes without loss of generality.
    """
    rows = td.body.sorted_rows()
    if len(rows) > m:
        raise TranslationError(
            f"the td has {len(rows)} body rows but the translation was asked "
            f"to use m = {m}"
        )
    supply = FreshSupply(
        prefix="pad",
        reserved={v.name for v in td.body.values() | td.conclusion.values()},
    )
    while len(rows) < m:
        cells = {
            attr: Value(supply.next(), attr.name) for attr in td.universe.attributes
        }
        rows.append(Row(cells))
    return rows


def shallow_translation(
    td: TemplateDependency, m: int | None = None
) -> TemplateDependency:
    """``theta -> theta_hat``: the shallow td over the blown-up universe.

    Parameters
    ----------
    td:
        A typed td over the base universe ``U``.
    m:
        The body size to use (defaults to the td's own body size).  When
        translating a whole set, pass the maximum body size so all
        translations share one blown-up universe.
    """
    rows = td.body.sorted_rows()
    m = m if m is not None else len(rows)
    n = blowup_count(m)
    pairs = pair_index(m)
    universe = td.universe
    hat_universe = blown_up_universe(universe, m)
    body_rows = _padded_body(td, m)

    translated_rows: list[Row] = []
    for k in range(1, m + 1):
        cells: dict[Attribute, Value] = {}
        for attribute in universe.attributes:
            cells[attribute.indexed(0)] = _indexed_value(attribute, 0, k)
            for pair, index in pairs.items():
                i, j = sorted(pair)
                if k not in pair:
                    cells[attribute.indexed(index)] = _indexed_value(
                        attribute, index, k
                    )
                else:
                    w_i = body_rows[i - 1][attribute]
                    w_j = body_rows[j - 1][attribute]
                    if w_i != w_j:
                        cells[attribute.indexed(index)] = _indexed_value(
                            attribute, index, k
                        )
                    else:
                        cells[attribute.indexed(index)] = _indexed_value(
                            attribute, index, min(i, j)
                        )
        translated_rows.append(Row(cells))
    hat_body = Relation(hat_universe, translated_rows)

    conclusion_cells: dict[Attribute, Value] = {}
    for attribute in universe.attributes:
        conclusion_value = td.conclusion[attribute]
        # For a typed td, w[A] in VAL(I) means w[A] occurs in column A of the
        # body; the first such row index is the paper's choice of k.
        k = next(
            (
                index + 1
                for index, row in enumerate(body_rows)
                if row[attribute] == conclusion_value
            ),
            m + 1,
        )
        conclusion_cells[attribute.indexed(0)] = _indexed_value(attribute, 0, k)
        for index in range(1, n + 1):
            conclusion_cells[attribute.indexed(index)] = _indexed_value(
                attribute, index, m + 1
            )
    conclusion = Row(conclusion_cells)
    label = f"{td.name}_hat" if td.name else "theta_hat"
    return TemplateDependency(conclusion, hat_body, name=label)


def hat_relation(relation: Relation, m: int) -> Relation:
    """``I -> I_hat``: duplicate every value ``n + 1`` times (Lemma 8's transport).

    Each row ``t`` of ``I`` becomes the row with ``s[A_i] = (A_i, t[A])`` for
    all ``A`` and ``i``.
    """
    n = blowup_count(m)
    hat_universe = blown_up_universe(relation.universe, m)
    rows = []
    for row in relation:
        cells: dict[Attribute, Value] = {}
        for attribute in relation.universe.attributes:
            for index in range(n + 1):
                cells[attribute.indexed(index)] = _indexed_value(
                    attribute, index, row[attribute].name
                )
        rows.append(Row(cells))
    return Relation(hat_universe, rows)


def unhat_relation(hat: Relation, universe: Universe) -> Relation:
    """Project a blown-up relation onto its ``A_0`` columns and rename into ``U``.

    This realises the "isomorphic to I_hat[U_0]" step in the second half of
    Lemma 8's proof.
    """
    zero_columns = [attribute.indexed(0) for attribute in universe.attributes]
    for column in zero_columns:
        if column not in hat.universe:
            raise TranslationError(f"the relation lacks the column {column.name}")
    projected = hat.project(zero_columns)
    renaming = {attribute.indexed(0): attribute for attribute in universe.attributes}
    return projected.rename_attributes(renaming)


def index_fds(universe: Universe, m: int) -> list[FunctionalDependency]:
    """The fds ``A_i -> A_j`` (for every base attribute, all ``0 <= i, j <= n``).

    Only the non-trivial ones (``i != j``) are emitted.
    """
    n = blowup_count(m)
    fds = []
    for attribute in universe.attributes:
        for i in range(n + 1):
            for j in range(n + 1):
                if i == j:
                    continue
                fds.append(
                    FunctionalDependency(
                        [attribute.indexed(i)], [attribute.indexed(j)]
                    )
                )
    return fds


def index_mvds(universe: Universe, m: int) -> list[MultivaluedDependency]:
    """The mvds ``A_i ->> A_j`` replacing the index fds (Lemma 10 / Theorem 6)."""
    n = blowup_count(m)
    mvds = []
    for attribute in universe.attributes:
        for i in range(n + 1):
            for j in range(n + 1):
                if i == j:
                    continue
                mvds.append(
                    MultivaluedDependency(
                        [attribute.indexed(i)], [attribute.indexed(j)]
                    )
                )
    return mvds


@dataclass(frozen=True)
class Lemma8Translation:
    """The output of the Lemma 8 premise/conclusion translation."""

    universe: Universe
    m: int
    n: int
    premises: tuple
    conclusion: TemplateDependency


def lemma8_translation(
    premises: Sequence[TemplateDependency], conclusion: TemplateDependency
) -> Lemma8Translation:
    """``Sigma, sigma -> Sigma_hat union {A_i -> A_j}, sigma_hat`` (Lemma 8)."""
    bodies = [len(td.body) for td in [*premises, conclusion]]
    m = max(bodies)
    base_universe = conclusion.universe
    for td in premises:
        if td.universe != base_universe:
            raise TranslationError("all tds must share one base universe")
    translated_premises = [shallow_translation(td, m) for td in premises]
    fds = index_fds(base_universe, m)
    return Lemma8Translation(
        universe=blown_up_universe(base_universe, m),
        m=m,
        n=blowup_count(m),
        premises=tuple([*translated_premises, *fds]),
        conclusion=shallow_translation(conclusion, m),
    )
