"""The paper's contribution, section by section.

* :mod:`repro.core.untyped`         -- the untyped side (Section 2.4, Theorem 1's shape)
* :mod:`repro.core.translation`     -- Section 3: T on tuples and relations
* :mod:`repro.core.sigma0`          -- Lemmas 1 and 4: the structural set Sigma_0
* :mod:`repro.core.dep_translation` -- Section 4: T on dependencies
* :mod:`repro.core.inverse`         -- Lemma 3: T^-1 on typed counterexamples
* :mod:`repro.core.reduction_typed` -- Theorem 2: the untyped-to-typed reduction
* :mod:`repro.core.egd_elimination` -- Lemma 9 / Example 4: fd gadgets
* :mod:`repro.core.shallow`         -- Section 6: the shallow-td translation
* :mod:`repro.core.mvd_chain`       -- Lemma 10: mvds simulate the index fds
* :mod:`repro.core.reduction_pjd`   -- Theorem 6: the td-to-pjd reduction
* :mod:`repro.core.formal_system`   -- Theorems 7 and 8: formal systems
* :mod:`repro.core.armstrong`       -- Theorem 5: Armstrong relations
* :mod:`repro.core.inseparability`  -- Theorems 3 and 4: fixed sets and queries
"""

from repro.core.untyped import (
    AB_TO_C,
    UNTYPED_UNIVERSE,
    check_theorem1_premises,
    is_ab_total,
    untyped_egd,
    untyped_relation,
    untyped_td,
    untyped_tuple,
)
from repro.core.translation import (
    SENTINEL,
    TYPED_UNIVERSE,
    code,
    decode,
    n_tuple,
    t_relation,
    t_rows,
    t_tuple,
)
from repro.core.sigma0 import (
    SIGMA_0,
    SIGMA_0_SET,
    STRUCTURAL_FDS,
    lemma1_holds,
    lemma4_holds,
    satisfies_sigma0_set,
)
from repro.core.dep_translation import t_dependency, t_egd, t_set, t_td
from repro.core.inverse import InverseMarkers, t_inverse
from repro.core.reduction_typed import (
    TypedReduction,
    reduce_untyped_to_typed,
    transport_counterexample,
    transport_counterexample_back,
    verify_reduction_on_instance,
)
from repro.core.egd_elimination import (
    eliminate_fds,
    example4_gadget,
    fd_gadget,
    fd_gadgets,
)
from repro.core.shallow import (
    Lemma8Translation,
    blown_up_universe,
    blowup_count,
    hat_relation,
    index_fds,
    index_mvds,
    lemma8_translation,
    pair_index,
    shallow_translation,
    unhat_relation,
)
from repro.core.mvd_chain import (
    Lemma10Instance,
    corollary_equivalence,
    lemma10_instance,
    simulation_mvds,
    verify_lemma10,
)
from repro.core.reduction_pjd import (
    PjdReduction,
    reduce_td_to_pjd,
    reduce_td_to_pjd_with_m,
)
from repro.core.formal_system import (
    ChaseProofSystem,
    Proof,
    UniverseBoundedProof,
    chase_membership_oracle,
    decision_procedure_from_bounded_system,
    finitely_many_pjds,
)
from repro.core.armstrong import (
    decision_procedure_from_armstrong,
    find_armstrong_relation,
    implication_profile,
    is_armstrong_for,
    satisfaction_profile,
)
from repro.core.inseparability import InseparabilityQuery, build_query, sigma_1, sigma_2

__all__ = [
    "AB_TO_C",
    "UNTYPED_UNIVERSE",
    "check_theorem1_premises",
    "is_ab_total",
    "untyped_egd",
    "untyped_relation",
    "untyped_td",
    "untyped_tuple",
    "SENTINEL",
    "TYPED_UNIVERSE",
    "code",
    "decode",
    "n_tuple",
    "t_relation",
    "t_rows",
    "t_tuple",
    "SIGMA_0",
    "SIGMA_0_SET",
    "STRUCTURAL_FDS",
    "lemma1_holds",
    "lemma4_holds",
    "satisfies_sigma0_set",
    "t_dependency",
    "t_egd",
    "t_set",
    "t_td",
    "InverseMarkers",
    "t_inverse",
    "TypedReduction",
    "reduce_untyped_to_typed",
    "transport_counterexample",
    "transport_counterexample_back",
    "verify_reduction_on_instance",
    "eliminate_fds",
    "example4_gadget",
    "fd_gadget",
    "fd_gadgets",
    "Lemma8Translation",
    "blown_up_universe",
    "blowup_count",
    "hat_relation",
    "index_fds",
    "index_mvds",
    "lemma8_translation",
    "pair_index",
    "shallow_translation",
    "unhat_relation",
    "Lemma10Instance",
    "corollary_equivalence",
    "lemma10_instance",
    "simulation_mvds",
    "verify_lemma10",
    "PjdReduction",
    "reduce_td_to_pjd",
    "reduce_td_to_pjd_with_m",
    "ChaseProofSystem",
    "Proof",
    "UniverseBoundedProof",
    "chase_membership_oracle",
    "decision_procedure_from_bounded_system",
    "finitely_many_pjds",
    "decision_procedure_from_armstrong",
    "find_armstrong_relation",
    "implication_profile",
    "is_armstrong_for",
    "satisfaction_profile",
    "InseparabilityQuery",
    "build_query",
    "sigma_1",
    "sigma_2",
]
