"""Theorem 6: the reduction from td implication to pjd implication.

Pipeline (Section 6):

1. **Lemma 8** -- translate every td over ``U`` into its shallow counterpart
   over the blown-up universe ``U_hat``, and add the index fds
   ``A_i -> A_j`` tying the copies together.
2. **Lemma 9** -- replace each index fd by its total-td gadget
   ``theta_{A_i -> A_j}``.
3. **Lemma 10** -- replace the gadgets by the index mvds ``A_i ->> A_j``
   (legitimate because ``n >= 2``, i.e. at least three copies per base
   attribute exist).

The resulting premise set consists of shallow tds and mvds -- all of them
projected join dependencies by Lemma 6 -- and the conclusion is a shallow
td, so the implication problem for pjds inherits the undecidability of the
problem for arbitrary (typed) tds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from repro.core.egd_elimination import fd_gadget
from repro.core.shallow import (
    Lemma8Translation,
    blowup_count,
    index_mvds,
    lemma8_translation,
    shallow_translation,
)
from repro.dependencies.conversion import mvd_to_jd, shallow_td_to_pjd
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.pjd import ProjectedJoinDependency
from repro.dependencies.td import TemplateDependency
from repro.model.attributes import Universe
from repro.util.errors import TranslationError

PjdPremise = Union[TemplateDependency, MultivaluedDependency]


@dataclass(frozen=True)
class PjdReduction:
    """The output of the Theorem 6 reduction."""

    universe: Universe
    m: int
    n: int
    premises: tuple[PjdPremise, ...]
    conclusion: TemplateDependency
    source_premises: tuple[TemplateDependency, ...]
    source_conclusion: TemplateDependency

    def premises_as_pjds(self) -> list[ProjectedJoinDependency]:
        """Every premise expressed as a projected join dependency.

        Shallow tds go through Lemma 6; mvds become their two-component jds.
        """
        pjds: list[ProjectedJoinDependency] = []
        for premise in self.premises:
            if isinstance(premise, MultivaluedDependency):
                pjds.append(mvd_to_jd(premise, self.universe))
            else:
                pjds.append(shallow_td_to_pjd(premise))
        return pjds

    def conclusion_as_pjd(self) -> ProjectedJoinDependency:
        """The conclusion expressed as a projected join dependency."""
        return shallow_td_to_pjd(self.conclusion)

    def size(self) -> dict[str, int]:
        """Size statistics of the reduction output (used by the benchmarks)."""
        return {
            "base_m": self.m,
            "blowup_n": self.n,
            "hat_universe_width": len(self.universe),
            "premise_count": len(self.premises),
            "mvd_count": sum(
                1 for p in self.premises if isinstance(p, MultivaluedDependency)
            ),
            "shallow_td_count": sum(
                1 for p in self.premises if isinstance(p, TemplateDependency)
            ),
        }


def reduce_td_to_pjd(
    premises: Sequence[TemplateDependency],
    conclusion: TemplateDependency,
    use_mvds: bool = True,
) -> PjdReduction:
    """Perform the Theorem 6 reduction on a td implication instance.

    With ``use_mvds`` (the default, the paper's final form) the index fds are
    replaced by mvds; with ``use_mvds=False`` the Lemma 9 gadgets are kept
    instead, which is the intermediate form useful for ablation benchmarks.
    """
    for td in [*premises, conclusion]:
        if not td.is_typed():
            raise TranslationError(
                "Section 6 deals exclusively with the typed case; "
                "translate untyped inputs with the Theorem 2 reduction first"
            )
    lemma8 = lemma8_translation(list(premises), conclusion)
    if lemma8.n < 2 and use_mvds:
        # With fewer than three copies Lemma 10 does not apply; fall back to
        # padding m so that n >= 2 (always possible: padding bodies is
        # semantics-preserving).
        return reduce_td_to_pjd_with_m(list(premises), conclusion, m=3, use_mvds=True)
    return _assemble(lemma8, list(premises), conclusion, use_mvds)


def reduce_td_to_pjd_with_m(
    premises: Sequence[TemplateDependency],
    conclusion: TemplateDependency,
    m: int,
    use_mvds: bool = True,
) -> PjdReduction:
    """The reduction with an explicit body-size parameter ``m`` (for benchmarks)."""
    base_universe = conclusion.universe
    translated_premises = [shallow_translation(td, m) for td in premises]
    translated_conclusion = shallow_translation(conclusion, m)
    from repro.core.shallow import blown_up_universe, index_fds

    lemma8 = Lemma8Translation(
        universe=blown_up_universe(base_universe, m),
        m=m,
        n=blowup_count(m),
        premises=tuple([*translated_premises, *index_fds(base_universe, m)]),
        conclusion=translated_conclusion,
    )
    return _assemble(lemma8, list(premises), conclusion, use_mvds)


def _assemble(
    lemma8: Lemma8Translation,
    premises: list[TemplateDependency],
    conclusion: TemplateDependency,
    use_mvds: bool,
) -> PjdReduction:
    base_universe = conclusion.universe
    shallow_premises = [
        p for p in lemma8.premises if isinstance(p, TemplateDependency)
    ]
    if use_mvds:
        index_premises: list[PjdPremise] = list(index_mvds(base_universe, lemma8.m))
    else:
        index_premises = []
        from repro.dependencies.fd import FunctionalDependency

        for premise in lemma8.premises:
            if isinstance(premise, FunctionalDependency):
                determinant = next(iter(premise.determinant))
                dependent = next(iter(premise.dependent))
                index_premises.append(
                    fd_gadget(lemma8.universe, [determinant], dependent)
                )
    return PjdReduction(
        universe=lemma8.universe,
        m=lemma8.m,
        n=lemma8.n,
        premises=tuple([*shallow_premises, *index_premises]),
        conclusion=lemma8.conclusion,
        source_premises=tuple(premises),
        source_conclusion=conclusion,
    )
