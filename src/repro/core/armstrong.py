"""Armstrong relations (Section 5, Theorem 5).

A finite Armstrong relation for a premise set ``Sigma`` within a dependency
class ``D`` is a single finite relation ``I`` such that for every
``sigma in D``: ``I |= sigma  iff  Sigma |=_f sigma``.  Theorem 5: the fixed
set ``Sigma_2`` of Theorem 4 has no finite Armstrong relation in the class
of typed tds -- if it had one, its finite implication problem would be
decidable by evaluating satisfaction on that single relation.

The library provides the machinery that argument quantifies over:

* :func:`satisfaction_profile` -- the set of class members a relation
  satisfies;
* :func:`is_armstrong_for` -- check the Armstrong property against an
  explicit (finite) sample of the class;
* :func:`find_armstrong_relation` -- bounded search for an Armstrong
  relation (succeeds for well-behaved classes such as fds/mvds over small
  universes, the classical positive cases);
* :func:`decision_procedure_from_armstrong` -- the "evaluate on the
  Armstrong relation" decision procedure whose existence Theorem 5 turns
  into a contradiction.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.dependencies.base import Dependency
from repro.implication.engine import ImplicationEngine
from repro.implication.finite_search import candidate_relations
from repro.implication.problem import Verdict
from repro.model.attributes import Universe
from repro.model.relations import Relation
from repro.util.errors import DependencyError


def satisfaction_profile(
    relation: Relation, sample: Sequence[Dependency]
) -> tuple[bool, ...]:
    """Which members of the sample the relation satisfies, in order."""
    return tuple(dependency.satisfied_by(relation) for dependency in sample)


def implication_profile(
    premises: Sequence[Dependency],
    sample: Sequence[Dependency],
    engine: ImplicationEngine,
    finite: bool = True,
) -> tuple[Optional[bool], ...]:
    """Which members of the sample are (finitely) implied by the premises.

    ``None`` marks sample members the engine could not decide within its
    budget -- exactly the possibility Theorem 2/6 guarantees cannot be
    eliminated.
    """
    answers: list[Optional[bool]] = []
    for dependency in sample:
        outcome = (
            engine.finitely_implies(premises, dependency)
            if finite
            else engine.implies(premises, dependency)
        )
        if outcome.verdict is Verdict.IMPLIED:
            answers.append(True)
        elif outcome.verdict is Verdict.NOT_IMPLIED:
            answers.append(False)
        else:
            answers.append(None)
    return tuple(answers)


def is_armstrong_for(
    relation: Relation,
    premises: Sequence[Dependency],
    sample: Sequence[Dependency],
    engine: Optional[ImplicationEngine] = None,
    finite: bool = True,
) -> bool:
    """Whether ``relation`` is Armstrong for ``premises`` w.r.t. the given sample.

    The check is necessarily relative to a finite sample of the dependency
    class (the full class is infinite); undecided sample members raise,
    because silently skipping them would let a non-Armstrong relation pass.
    """
    engine = engine or ImplicationEngine(universe=relation.universe)
    implied = implication_profile(premises, sample, engine, finite=finite)
    satisfied = satisfaction_profile(relation, sample)
    for dependency, implied_answer, satisfied_answer in zip(sample, implied, satisfied):
        if implied_answer is None:
            raise DependencyError(
                f"could not decide whether the premises imply {dependency.describe()}; "
                "the Armstrong check would be meaningless"
            )
        if implied_answer != satisfied_answer:
            return False
    return True


def find_armstrong_relation(
    premises: Sequence[Dependency],
    sample: Sequence[Dependency],
    universe: Universe,
    max_rows: int = 4,
    domain_size: int = 3,
    typed_universe: bool = True,
    engine: Optional[ImplicationEngine] = None,
) -> Optional[Relation]:
    """Bounded search for a finite Armstrong relation w.r.t. a dependency sample.

    Returns the first relation (in order of increasing size) whose
    satisfaction profile matches the premises' finite-implication profile,
    or ``None`` when the bounded space contains none.
    """
    engine = engine or ImplicationEngine(universe=universe)
    implied = implication_profile(premises, sample, engine, finite=True)
    if any(answer is None for answer in implied):
        raise DependencyError(
            "the premises' implication profile could not be fully decided; "
            "refusing to search for an Armstrong relation against it"
        )
    for candidate in candidate_relations(
        universe, max_rows, domain_size, typed_universe
    ):
        if satisfaction_profile(candidate, sample) == implied:
            return candidate
    return None


def decision_procedure_from_armstrong(
    armstrong_relation: Relation,
) -> Callable[[Dependency], bool]:
    """The decision procedure an Armstrong relation would give (Theorem 5).

    Finite implication of any class member by the premise set reduces to a
    single satisfaction check on the Armstrong relation -- a recursive test.
    Theorem 5 derives a contradiction from the existence of such a procedure
    for ``Sigma_2`` in the class of typed tds; for decidable classes (fds,
    mvds over a fixed universe) the procedure is genuine and the examples
    demonstrate it.
    """

    def decide(dependency: Dependency) -> bool:
        return dependency.satisfied_by(armstrong_relation)

    return decide
