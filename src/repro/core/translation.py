"""Section 3: translating untyped tuples and relations to typed ones.

The typed universe is ``U = ABCDEF``.  Every untyped element ``a`` gets
three typed copies ``a^1 in DOM(A)``, ``a^2 in DOM(B)``, ``a^3 in DOM(C)``;
there are constant elements ``a0, b0, c0, d0, e0, f0, f1``; ``DOM(D)``
additionally contains (codes of) untyped tuples and ``DOM(E)`` contains the
untyped elements themselves.

* ``T(w) = (a^1, b^2, c^3, <w>, e0, f1)`` encodes the untyped tuple
  ``w = (a, b, c)``;
* ``N(a) = (a^1, a^2, a^3, d0, a, f1)`` records that ``a^1, a^2, a^3`` name
  the same untyped element;
* ``s = (a0, b0, c0, d0, e0, f0)`` is the sentinel row;
* ``T(I)`` replaces every tuple of ``I`` by its ``T``-code and adds ``N(a)``
  for every value and the sentinel.

``T`` is monotone, preserves finiteness, and ``T(I)`` satisfies the four
functional dependencies of Lemma 1 -- all of which the test-suite checks.
"""

from __future__ import annotations


from repro.core.untyped import UNTYPED_UNIVERSE, require_untyped
from repro.model.attributes import Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value, untyped
from repro.util.errors import TranslationError

#: The paper's typed universe ``U = ABCDEF``.
TYPED_UNIVERSE = Universe.from_names("ABCDEF")

A, B, C, D, E, F = TYPED_UNIVERSE.attributes

#: The constant elements of Section 3.
A0 = Value("a0", A.name)
B0 = Value("b0", B.name)
C0 = Value("c0", C.name)
D0 = Value("d0", D.name)
E0 = Value("e0", E.name)
F0 = Value("f0", F.name)
F1 = Value("f1", F.name)

#: The sentinel row ``s = (a0, b0, c0, d0, e0, f0)``.
SENTINEL = Row({A: A0, B: B0, C: C0, D: D0, E: E0, F: F0})


def code(value: Value, index: int) -> Value:
    """The typed copy ``a^index`` of an untyped element (index 1, 2 or 3)."""
    if value.tag is not None:
        raise TranslationError(
            f"{value!r} is already typed; T applies to untyped values"
        )
    if index == 1:
        return Value(f"{value.name}^1", A.name)
    if index == 2:
        return Value(f"{value.name}^2", B.name)
    if index == 3:
        return Value(f"{value.name}^3", C.name)
    raise TranslationError("the copy index must be 1, 2 or 3")


def decode(value: Value) -> Value:
    """The inverse mapping ``phi``: ``phi(a^1) = phi(a^2) = phi(a^3) = a``.

    Also accepts E-column copies of untyped elements (which are the elements
    themselves under a typed tag).
    """
    if value.tag in (A.name, B.name, C.name) and "^" in value.name:
        return untyped(value.name.rsplit("^", 1)[0])
    if value.tag == E.name and value != E0:
        return untyped(value.name)
    raise TranslationError(f"{value!r} is not a typed copy of an untyped element")


def tuple_code(row: Row) -> Value:
    """The ``DOM(D)`` element coding the untyped tuple ``w`` itself."""
    cells = ",".join(row[attr].name for attr in UNTYPED_UNIVERSE)
    return Value(f"<{cells}>", D.name)


def element_in_e(value: Value) -> Value:
    """The untyped element ``a`` viewed as a member of ``DOM(E)``."""
    if value.tag is not None:
        raise TranslationError(f"{value!r} is already typed")
    return Value(value.name, E.name)


def t_tuple(row: Row) -> Row:
    """``T(w) = (a^1, b^2, c^3, <w>, e0, f1)`` for an untyped tuple ``w = (a, b, c)``."""
    a_value = row[UNTYPED_UNIVERSE.attributes[0]]
    b_value = row[UNTYPED_UNIVERSE.attributes[1]]
    c_value = row[UNTYPED_UNIVERSE.attributes[2]]
    return Row(
        {
            A: code(a_value, 1),
            B: code(b_value, 2),
            C: code(c_value, 3),
            D: tuple_code(row),
            E: E0,
            F: F1,
        }
    )


def n_tuple(value: Value) -> Row:
    """``N(a) = (a^1, a^2, a^3, d0, a, f1)`` for an untyped element ``a``."""
    return Row(
        {
            A: code(value, 1),
            B: code(value, 2),
            C: code(value, 3),
            D: D0,
            E: element_in_e(value),
            F: F1,
        }
    )


def t_relation(relation: Relation) -> Relation:
    """``T(I)``: the typed encoding of an untyped relation over ``A'B'C'``."""
    require_untyped(relation)
    rows: set[Row] = {SENTINEL}
    for row in relation:
        rows.add(t_tuple(row))
    for value in relation.values():
        rows.add(n_tuple(value))
    return Relation(TYPED_UNIVERSE, rows)


def t_rows(relation: Relation) -> dict[Row, str]:
    """Display labels (``s``, ``T(w)``, ``N(a)``) for the rows of ``T(I)``.

    Used by the example scripts to render Example 1 exactly as in the paper.
    """
    labels: dict[Row, str] = {SENTINEL: "s"}
    for row in relation:
        labels[t_tuple(row)] = f"T({row})"
    for value in relation.values():
        labels[n_tuple(value)] = f"N({value.name})"
    return labels


def is_t_code(row: Row) -> bool:
    """Whether a typed row has the shape ``T(w)`` (E-component ``e0``, F ``f1``)."""
    return row[E] == E0 and row[F] == F1 and row[D] != D0


def is_n_code(row: Row) -> bool:
    """Whether a typed row has the shape ``N(a)`` (D-component ``d0``, F ``f1``)."""
    return row[D] == D0 and row[F] == F1


def decode_t_row(row: Row) -> Row:
    """Recover the untyped tuple ``w`` from ``T(w)`` (via ``phi`` on the ABC columns)."""
    if not is_t_code(row):
        raise TranslationError(f"{row!r} is not of the form T(w)")
    return Row(
        {
            UNTYPED_UNIVERSE.attributes[0]: decode(row[A]),
            UNTYPED_UNIVERSE.attributes[1]: decode(row[B]),
            UNTYPED_UNIVERSE.attributes[2]: decode(row[C]),
        }
    )


def t_preserves_monotonicity(smaller: Relation, larger: Relation) -> bool:
    """Check the paper's observation that ``I <= J`` entails ``T(I) <= T(J)``."""
    if not smaller.rows <= larger.rows:
        raise TranslationError("monotonicity is only meaningful for nested relations")
    return t_relation(smaller).rows <= t_relation(larger).rows


def values_of_t(relation: Relation) -> dict[str, frozenset[Value]]:
    """The values of ``T(I)`` grouped by typed column, for inspection and tests."""
    typed_image = t_relation(relation)
    return {attr.name: typed_image.column(attr) for attr in TYPED_UNIVERSE}
