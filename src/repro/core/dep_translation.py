"""Section 4: translating untyped dependencies to typed ones.

A td is a pair (conclusion tuple, body relation), so the Section 3 relation
translation lifts to dependencies componentwise:

* ``T((w, I)) = (T(w), T(I))`` for a td,
* ``T((a = b, I)) = (a^1 = b^1, T(I))`` for an egd,
* the fd ``A'B' -> C'`` of Theorem 1 is first turned into its equivalent
  egds and then translated.

The premise-set translation additionally adds the structural dependencies
``Sigma_0`` (Lemma 4 justifies that this is sound exactly because the
premise sets of Theorem 1 contain ``A'B' -> C'``).
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.sigma0 import SIGMA_0_SET
from repro.core.translation import code, t_relation, t_tuple
from repro.core.untyped import UNTYPED_UNIVERSE, UntypedDependency
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.td import TemplateDependency
from repro.util.errors import TranslationError

TypedDependency = Union[
    TemplateDependency, EqualityGeneratingDependency, FunctionalDependency
]


def t_td(td: TemplateDependency) -> TemplateDependency:
    """``T((w, I)) = (T(w), T(I))``."""
    if td.universe != UNTYPED_UNIVERSE:
        raise TranslationError("T translates tds over the untyped universe A'B'C'")
    return TemplateDependency(
        t_tuple(td.conclusion),
        t_relation(td.body),
        name=f"T({td.name})" if td.name else None,
    )


def t_egd(egd: EqualityGeneratingDependency) -> EqualityGeneratingDependency:
    """``T((a = b, I)) = (a^1 = b^1, T(I))``."""
    if egd.universe != UNTYPED_UNIVERSE:
        raise TranslationError("T translates egds over the untyped universe A'B'C'")
    return EqualityGeneratingDependency(
        code(egd.left, 1),
        code(egd.right, 1),
        t_relation(egd.body),
        name=f"T({egd.name})" if egd.name else None,
    )


def t_dependency(dependency: UntypedDependency) -> list[TypedDependency]:
    """Translate one untyped dependency (splitting fds into egds first)."""
    if isinstance(dependency, TemplateDependency):
        return [t_td(dependency)]
    if isinstance(dependency, EqualityGeneratingDependency):
        return [t_egd(dependency)]
    if isinstance(dependency, FunctionalDependency):
        return [t_egd(egd) for egd in fd_to_untyped_egds(dependency)]
    raise TranslationError(f"cannot translate dependency of type {type(dependency)!r}")


def fd_to_untyped_egds(fd: FunctionalDependency) -> list[EqualityGeneratingDependency]:
    """The untyped egds equivalent to an fd over ``A'B'C'``.

    The generic conversion in :mod:`repro.dependencies.conversion` builds
    *typed* two-row bodies; here the two rows must be untyped (shared
    domain), matching the regime of Theorem 1's premises.
    """
    from repro.model.relations import Relation
    from repro.model.tuples import Row
    from repro.model.values import untyped

    attrs = UNTYPED_UNIVERSE.attributes
    for attr in fd.attributes():
        if attr not in UNTYPED_UNIVERSE:
            raise TranslationError("the fd must be over the untyped universe A'B'C'")
    first = {}
    second = {}
    for attr in attrs:
        base = attr.name.rstrip("'").lower()
        if attr in fd.determinant:
            shared = untyped(f"{base}")
            first[attr] = shared
            second[attr] = shared
        else:
            first[attr] = untyped(f"{base}1")
            second[attr] = untyped(f"{base}2")
    body = Relation(UNTYPED_UNIVERSE, [Row(first), Row(second)])
    rows = body.sorted_rows()
    egds = []
    for attr in sorted(fd.dependent - fd.determinant):
        egds.append(
            EqualityGeneratingDependency(
                rows[0][attr],
                rows[1][attr],
                body,
                name=f"egd[{fd.describe()}/{attr.name}]",
            )
        )
    return egds


def t_set(premises: Sequence[UntypedDependency]) -> list[TypedDependency]:
    """``T(Sigma) = {T(theta) : theta in Sigma} union Sigma_0``.

    This is the premise-set translation used in the proof of Theorem 2.
    """
    translated: list[TypedDependency] = []
    for dependency in premises:
        translated.extend(t_dependency(dependency))
    translated.extend(SIGMA_0_SET)
    return translated
