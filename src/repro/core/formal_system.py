"""Formal systems for dependency implication (Section 6, Theorems 7 and 8).

The paper distinguishes two notions:

* a **formal system** is a recursive set of pairs ``(Sigma, (sigma_1, ...,
  sigma_k))`` -- premise set plus proof sequence -- sound and complete for
  implication;
* a **universe-bounded formal system** fixes the universe per proof; because
  there are only finitely many U-pjds for a fixed ``U``, a sound and
  complete universe-bounded system would make implication decidable --
  contradiction (Theorem 7).  The same argument applies to k-simple tds,
  confirming Sciore's conjecture.
* Theorem 8: a (non-universe-bounded) sound and complete system *does*
  exist, because the td-to-pjd reduction lets a proof escape into a larger
  universe.

The library realises these notions executably:

* :class:`Proof` / :class:`UniverseBoundedProof` -- proof objects;
* :class:`ChaseProofSystem` -- a concrete, checkable proof format (a chase
  certificate) that is sound, and complete for every implication the chase
  can witness within a stated budget;
* :func:`finitely_many_pjds` / :func:`decision_procedure_from_bounded_system`
  -- the executable content of Theorem 7's counting argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import ChaseBudget, resolve_chase_budget, warn_legacy_kwargs
from repro.dependencies.base import Dependency
from repro.dependencies.pjd import ProjectedJoinDependency, all_pjds_over
from repro.implication.chase_prover import prove
from repro.implication.normalize import normalize_all, normalize_dependency
from repro.implication.problem import Verdict
from repro.model.attributes import Universe
from repro.util.errors import FormalSystemError


@dataclass(frozen=True)
class Proof:
    """A proof object: premises plus a repetition-free proof sequence.

    The intended reading is that the last element of ``sequence`` is the
    proved dependency; intermediate elements are lemmas.
    """

    premises: tuple[Dependency, ...]
    sequence: tuple[Dependency, ...]

    def __post_init__(self) -> None:
        if not self.sequence:
            raise FormalSystemError("a proof must derive at least one dependency")
        if len(set(id(s) for s in self.sequence)) != len(self.sequence):
            # Identity-level duplicates are certainly repetitions; value-level
            # duplicates are caught by the describing system's verifier.
            raise FormalSystemError("a proof sequence must be repetition-free")

    @property
    def conclusion(self) -> Dependency:
        """The dependency the proof claims to establish."""
        return self.sequence[-1]


@dataclass(frozen=True)
class UniverseBoundedProof:
    """A proof carrying its universe, as in the paper's second notion."""

    universe: Universe
    premises: tuple[Dependency, ...]
    sequence: tuple[Dependency, ...]

    @property
    def conclusion(self) -> Dependency:
        """The dependency the proof claims to establish."""
        return self.sequence[-1]


class ChaseProofSystem:
    """A sound formal system whose proofs are chase certificates.

    A proof is accepted when re-running the chase of the conclusion's body
    with the premise set (under the system's fixed budget) establishes the
    conclusion.  Soundness is immediate from the soundness of the chase.
    The system is complete *relative to its budget*: every implication the
    chase can witness within ``max_steps`` chase steps has an accepted
    proof.  An absolutely complete *and* recursive system for finite
    implication cannot exist -- that is the corollary to Theorem 2/6 -- so
    the budget is not an implementation shortcut but the honest boundary.
    """

    def __init__(
        self,
        universe: Universe,
        max_steps: Optional[int] = None,
        max_rows: Optional[int] = None,
        *,
        budget: Optional[ChaseBudget] = None,
    ) -> None:
        warn_legacy_kwargs(
            "ChaseProofSystem", max_steps=max_steps, max_rows=max_rows
        )
        self._universe = universe
        self._budget = resolve_chase_budget(budget, max_steps, max_rows)

    @property
    def universe(self) -> Universe:
        """The universe proofs are interpreted over."""
        return self._universe

    @property
    def budget(self) -> ChaseBudget:
        """The chase budget every proof attempt and verification runs under."""
        return self._budget

    def prove(
        self, premises: Sequence[Dependency], conclusion: Dependency
    ) -> Optional[Proof]:
        """Attempt to produce an accepted proof of ``premises |= conclusion``."""
        primitives = normalize_all(premises, self._universe)
        targets = normalize_dependency(conclusion, self._universe)
        for target in targets:
            outcome = prove(primitives, target, budget=self._budget)
            if outcome.verdict is not Verdict.IMPLIED:
                return None
        return Proof(tuple(premises), (conclusion,))

    def verify(self, proof: Proof) -> bool:
        """Check a proof by replaying the chase for every step.

        Each element of the sequence must follow from the premises plus the
        earlier elements.
        """
        established: list[Dependency] = []
        for step in proof.sequence:
            available = [*proof.premises, *established]
            primitives = normalize_all(available, self._universe)
            targets = normalize_dependency(step, self._universe)
            for target in targets:
                outcome = prove(primitives, target, budget=self._budget)
                if outcome.verdict is not Verdict.IMPLIED:
                    return False
            established.append(step)
        return True


def finitely_many_pjds(universe: Universe, max_components: int = 2) -> int:
    """Count the U-pjds with a bounded number of components.

    The crucial (and only) property of pjds used by Theorem 7 is that for a
    fixed universe there are finitely many of them; this function makes the
    count concrete for small universes.
    """
    return len(all_pjds_over(universe, max_components=max_components))


def decision_procedure_from_bounded_system(
    universe: Universe,
    premises: Sequence[ProjectedJoinDependency],
    conclusion: ProjectedJoinDependency,
    membership_oracle: Callable[[UniverseBoundedProof], bool],
    max_components: int = 2,
    max_length: int = 2,
) -> bool:
    """The Theorem 7 argument, executably.

    Given a *universe-bounded* formal system (represented by its recursive
    membership oracle), enumerate every repetition-free proof sequence of
    U-pjds up to ``max_length`` ending in the conclusion and ask the oracle.
    For a sound and complete bounded system this decides ``premises |=
    conclusion`` -- which is impossible in general, hence Theorem 7.  The
    enumeration is genuinely finite, which is the whole point; the bounds
    keep it small enough to run in tests.
    """
    from itertools import permutations

    candidates = [
        pjd for pjd in all_pjds_over(universe, max_components=max_components)
    ]
    pool = [pjd for pjd in candidates if pjd != conclusion]
    for length in range(1, max_length + 1):
        for prefix in permutations(pool, length - 1):
            sequence = (*prefix, conclusion)
            proof = UniverseBoundedProof(universe, tuple(premises), sequence)
            if membership_oracle(proof):
                return True
    return False


def chase_membership_oracle(
    system: ChaseProofSystem,
) -> Callable[[UniverseBoundedProof], bool]:
    """Wrap a :class:`ChaseProofSystem` as a universe-bounded membership oracle.

    Used by tests and benchmarks to exercise
    :func:`decision_procedure_from_bounded_system` with a sound (though, by
    necessity, budget-incomplete) system.
    """

    def oracle(proof: UniverseBoundedProof) -> bool:
        return system.verify(Proof(proof.premises, proof.sequence))

    return oracle
