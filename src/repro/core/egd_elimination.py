"""Lemma 9 / Example 4: eliminating functional dependencies in favour of tds.

For a typed universe ``U`` and an fd ``X -> A`` (single dependent attribute,
``A`` outside ``X``), the paper defines the total td
``theta_{X -> A} = (u, {u_1, u_2, u_3})`` with

* ``u_1[X] = u_2[X]`` and ``u_1[B] != u_2[B]`` for every ``B`` outside ``X``,
* ``u_2[A] = u_3[A]`` and ``u_2[B] != u_3[B]`` for every ``B != A``,
* ``u[A] = u_1[A]`` and ``u[B] = u_3[B]`` for every ``B != A``.

Lemma 9 (due to Beeri-Vardi): replacing every fd of a typed td/fd set by its
gadget preserves implication and finite implication of tds, and the original
set implies the gadget set.  The module also provides the set-level
replacement used by the Theorem 6 pipeline.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.td import TemplateDependency
from repro.model.attributes import Attribute, AttributeLike, Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value
from repro.util.errors import DependencyError


def _value(attribute: Attribute, index: Union[int, str]) -> Value:
    return Value(f"{attribute.name.lower()}{index}", attribute.name)


def fd_gadget(
    universe: Universe,
    determinant: Iterable[AttributeLike],
    dependent: AttributeLike,
    name: str | None = None,
) -> TemplateDependency:
    """The total td ``theta_{X -> A}`` of Lemma 9 over ``universe``.

    Example 4's instance (``U = ABCDEF``, ``X = AD``, ``A = B``) is
    reproduced verbatim by
    ``fd_gadget(Universe.from_names("ABCDEF"), ["A", "D"], "B")`` and checked
    against the printed tableau in the test-suite.
    """
    determinant_attrs = frozenset(universe.subset(determinant))
    dependent_attr = universe.subset([dependent])[0]
    if dependent_attr in determinant_attrs:
        raise DependencyError(
            "the gadget is defined for fds X -> A with A outside X "
            "(such fds are the only non-trivial singletons)"
        )

    cells_u1: dict[Attribute, Value] = {}
    cells_u2: dict[Attribute, Value] = {}
    cells_u3: dict[Attribute, Value] = {}
    cells_u: dict[Attribute, Value] = {}
    for attribute in universe.attributes:
        if attribute in determinant_attrs:
            # u_1 and u_2 share the X-components.
            cells_u1[attribute] = _value(attribute, 1)
            cells_u2[attribute] = _value(attribute, 1)
        else:
            cells_u1[attribute] = _value(attribute, 1)
            cells_u2[attribute] = _value(attribute, 2)
        if attribute == dependent_attr:
            # u_3 shares the A-component with u_2.
            cells_u3[attribute] = cells_u2[attribute]
        else:
            cells_u3[attribute] = _value(attribute, 3)
        if attribute == dependent_attr:
            cells_u[attribute] = cells_u1[attribute]
        else:
            cells_u[attribute] = cells_u3[attribute]

    body = Relation(universe, [Row(cells_u1), Row(cells_u2), Row(cells_u3)])
    conclusion = Row(cells_u)
    label = name or (
        "theta["
        + "".join(sorted(a.name for a in determinant_attrs))
        + "->"
        + dependent_attr.name
        + "]"
    )
    return TemplateDependency(conclusion, body, name=label)


def fd_gadgets(
    universe: Universe, fd: FunctionalDependency
) -> list[TemplateDependency]:
    """All gadgets for an fd (one per non-trivial singleton ``X -> A``)."""
    gadgets = []
    for singleton in fd.singletons():
        dependent_attr = next(iter(singleton.dependent))
        gadgets.append(fd_gadget(universe, singleton.determinant, dependent_attr))
    return gadgets


def eliminate_fds(
    universe: Universe,
    dependencies: Sequence[Union[TemplateDependency, FunctionalDependency]],
) -> list[TemplateDependency]:
    """Replace every fd in a typed td/fd set by its Lemma 9 gadgets.

    Tds pass through unchanged; the result is a pure td set whose implication
    behaviour on td conclusions matches the original (Lemma 9).
    """
    result: list[TemplateDependency] = []
    for dependency in dependencies:
        if isinstance(dependency, TemplateDependency):
            result.append(dependency)
        elif isinstance(dependency, FunctionalDependency):
            result.extend(fd_gadgets(universe, dependency))
        else:
            raise DependencyError(
                "Lemma 9 applies to sets of typed tds and fds; "
                f"got {type(dependency)!r}"
            )
    return result


def example4_gadget() -> TemplateDependency:
    """The gadget printed as Example 4 (``U = ABCDEF``, fd ``AD -> B``)."""
    return fd_gadget(
        Universe.from_names("ABCDEF"), ["A", "D"], "B", name="theta[AD->B]"
    )
