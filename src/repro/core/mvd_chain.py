"""Lemma 10: simulating the index fds by multivalued dependencies.

Lemma 9 replaces the fds ``A_i -> A_j`` by the total-td gadgets
``theta_{A_i -> A_j}``; these gadgets are not shallow, so a final step is
needed before everything becomes a projected join dependency.  Lemma 10
shows that, whenever at least three copies ``A_i, A_j, A_k`` of the same
base attribute exist, the mvds ``{A_p ->> A_q : p, q in {i, j, k}}`` imply
the gadget ``theta_{A_i -> A_j}`` -- the paper proves it by the five-step
chase chain displayed in the lemma, which this module reproduces
step-by-step with the library's chase engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.egd_elimination import fd_gadget
from repro.dependencies.mvd import MultivaluedDependency
from repro.dependencies.td import TemplateDependency
from repro.implication.decidable import full_fragment_implies
from repro.implication.problem import ImplicationOutcome, Verdict
from repro.model.attributes import Attribute, Universe
from repro.util.errors import TranslationError


def simulation_mvds(
    base: Attribute, copies: Sequence[int]
) -> list[MultivaluedDependency]:
    """The mvds ``A_p ->> A_q`` for all ordered pairs of distinct copies."""
    mvds = []
    for p in copies:
        for q in copies:
            if p == q:
                continue
            mvds.append(MultivaluedDependency([base.indexed(p)], [base.indexed(q)]))
    return mvds


@dataclass(frozen=True)
class Lemma10Instance:
    """A concrete instance of Lemma 10: the mvds, the gadget, and the universe."""

    universe: Universe
    base: Attribute
    copies: tuple[int, int, int]
    mvds: tuple[MultivaluedDependency, ...]
    gadget: TemplateDependency


def lemma10_instance(
    universe: Universe, base: Attribute, i: int, j: int, k: int
) -> Lemma10Instance:
    """Build the Lemma 10 statement for the copies ``A_i, A_j, A_k`` of ``base``.

    ``universe`` must be a blown-up universe containing the three copies (and
    typically more columns, which the lemma's displayed chase folds into the
    "rest" column).
    """
    if len({i, j, k}) != 3:
        raise TranslationError("Lemma 10 needs three pairwise distinct copy indices")
    for index in (i, j, k):
        if base.indexed(index) not in universe:
            raise TranslationError(
                f"the universe lacks the column {base.indexed(index).name}"
            )
    mvds = simulation_mvds(base, [i, j, k])
    gadget = fd_gadget(universe, [base.indexed(i)], base.indexed(j))
    return Lemma10Instance(
        universe=universe,
        base=base,
        copies=(i, j, k),
        mvds=tuple(mvds),
        gadget=gadget,
    )


def verify_lemma10(instance: Lemma10Instance) -> ImplicationOutcome:
    """Verify ``{A_p ->> A_q} |= theta_{A_i -> A_j}`` by the terminating chase.

    Both sides are full dependencies, so the chase decides the implication;
    the lemma asserts the answer is ``IMPLIED``, which the test-suite checks
    on several universes.
    """
    return full_fragment_implies(
        list(instance.mvds), instance.gadget, instance.universe
    )


def lemma10_chain_lengths(instance: Lemma10Instance) -> int:
    """The number of chase steps needed to derive the gadget's conclusion.

    The paper's displayed chain uses five inferred tuples (``s_1 .. s_4``
    and ``t``); the engine may find a shorter or longer route depending on
    trigger order, so the exact count is reported rather than asserted.
    """
    outcome = verify_lemma10(instance)
    if outcome.verdict is not Verdict.IMPLIED or outcome.chase is None:
        raise TranslationError("Lemma 10 verification unexpectedly failed")
    return outcome.chase.steps


def corollary_equivalence(
    universe: Universe, base: Attribute, copies: Sequence[int]
) -> tuple[list[TemplateDependency], list[MultivaluedDependency]]:
    """The two sides of the corollary to Lemma 10 for one base attribute.

    Returns the gadget set ``{theta_{A_i -> A_j}}`` and the mvd set
    ``{A_i ->> A_j}`` over the given copies; the corollary states they imply
    each other (given at least three copies), which the integration tests
    verify with the chase in both directions on small instances.
    """
    gadgets = []
    mvds = []
    for p in copies:
        for q in copies:
            if p == q:
                continue
            gadgets.append(fd_gadget(universe, [base.indexed(p)], base.indexed(q)))
            mvds.append(MultivaluedDependency([base.indexed(p)], [base.indexed(q)]))
    return gadgets, mvds
