"""The untyped side of the reduction (Sections 2.4 and the input to Section 4).

The paper fixes the untyped universe ``U' = A'B'C'`` with a single shared
domain.  Theorem 1 (quoted from Beeri-Vardi) supplies the undecidable source
problem: implication of an untyped egd from sets of untyped tds and egds in
which every td is A'B'-total and the fd ``A'B' -> C'`` is present.  This
module provides that universe, constructors matching the paper's tuple
notation, and the structural checks Theorem 1 imposes on premise sets.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.dependencies.egd import EqualityGeneratingDependency
from repro.dependencies.fd import FunctionalDependency
from repro.dependencies.td import TemplateDependency
from repro.model.attributes import Universe
from repro.model.relations import Relation
from repro.model.tuples import Row
from repro.model.values import Value, untyped
from repro.util.errors import DependencyError, TranslationError

#: The paper's untyped universe ``U' = A'B'C'``.
UNTYPED_UNIVERSE = Universe(["A'", "B'", "C'"])

#: The three untyped attributes, for convenient direct access.
A_PRIME, B_PRIME, C_PRIME = UNTYPED_UNIVERSE.attributes

#: The fd ``A'B' -> C'`` required by condition (2) of Theorem 1.
AB_TO_C = FunctionalDependency([A_PRIME, B_PRIME], [C_PRIME])

UntypedDependency = Union[
    TemplateDependency, EqualityGeneratingDependency, FunctionalDependency
]


def untyped_tuple(a: str, b: str, c: str) -> Row:
    """The untyped tuple ``(a, b, c)`` over ``U' = A'B'C'``."""
    return Row.untyped_over(UNTYPED_UNIVERSE, [a, b, c])


def untyped_relation(table: Iterable[Sequence[str]]) -> Relation:
    """An untyped relation over ``U'`` from a table of value names."""
    return Relation.untyped(UNTYPED_UNIVERSE, table)


def untyped_td(
    conclusion: Sequence[str], body: Iterable[Sequence[str]], name: str | None = None
) -> TemplateDependency:
    """An untyped td ``(w, I)`` over ``U'`` from value-name tables."""
    if len(list(conclusion)) != 3:
        raise TranslationError(
            "an untyped tuple over A'B'C' has exactly three components"
        )
    return TemplateDependency(
        Row.untyped_over(UNTYPED_UNIVERSE, conclusion),
        untyped_relation(body),
        name=name,
    )


def untyped_egd(
    left: str, right: str, body: Iterable[Sequence[str]], name: str | None = None
) -> EqualityGeneratingDependency:
    """An untyped egd ``(a = b, I)`` over ``U'`` from value names."""
    return EqualityGeneratingDependency(
        untyped(left), untyped(right), untyped_relation(body), name=name
    )


def require_untyped(relation: Relation) -> Relation:
    """Validate that a relation is over ``U'`` and carries untyped values."""
    if relation.universe != UNTYPED_UNIVERSE:
        raise TranslationError("expected a relation over the untyped universe A'B'C'")
    if not relation.is_untyped():
        raise TranslationError("expected untyped (untagged) values")
    return relation


def is_ab_total(td: TemplateDependency) -> bool:
    """Condition (1) of Theorem 1: the td is A'B'-total."""
    return td.is_v_total([A_PRIME, B_PRIME])


def check_theorem1_premises(premises: Sequence[UntypedDependency]) -> None:
    """Validate a premise set against Theorem 1's two structural conditions.

    (1) every td in the set is A'B'-total, and (2) the fd ``A'B' -> C'`` is
    present (either literally or as the equivalent egd).  The Section 4
    reduction is proved for exactly such premise sets; the library enforces
    the conditions so that callers do not feed it inputs the correctness
    argument does not cover.
    """
    has_key_fd = False
    for dependency in premises:
        if isinstance(dependency, TemplateDependency):
            if not is_ab_total(dependency):
                raise DependencyError(
                    f"Theorem 1 requires A'B'-total tds; {dependency!r} is not"
                )
        elif isinstance(dependency, FunctionalDependency):
            if (
                dependency.determinant == frozenset({A_PRIME, B_PRIME})
                and C_PRIME in dependency.dependent
            ):
                has_key_fd = True
        elif isinstance(dependency, EqualityGeneratingDependency):
            continue
        else:
            raise DependencyError(
                "Theorem 1 premises consist of untyped tds, egds, and the fd A'B' -> C'"
            )
    if not has_key_fd:
        raise DependencyError(
            "Theorem 1 requires the fd A'B' -> C' to be among the premises"
        )


def untyped_values_of(dependencies: Iterable[UntypedDependency]) -> frozenset[Value]:
    """All untyped domain values mentioned by a set of dependencies."""
    values: set[Value] = set()
    for dependency in dependencies:
        if isinstance(dependency, TemplateDependency):
            values |= dependency.body.values() | dependency.conclusion.values()
        elif isinstance(dependency, EqualityGeneratingDependency):
            values |= dependency.body.values() | {dependency.left, dependency.right}
    return frozenset(values)
