"""Theorem 2: the reduction from untyped to typed (finite) implication.

Given an untyped premise set ``Sigma`` (A'B'-total tds, egds, and the fd
``A'B' -> C'``) and an untyped egd ``sigma``, the reduction produces

* typed premises ``T(Sigma) = {T(theta) : theta in Sigma} union Sigma_0``,
* typed conclusion ``T(sigma)``,

and Lemmas 1-4 show ``Sigma |= sigma  iff  T(Sigma) |= T(sigma)`` and the
same for finite implication.  Because ``T`` and ``T^-1`` both preserve
finiteness the reduction is *conservative*: one construction settles both
problems at once.

The undecidability statement itself is a meta-theorem; what the library
makes executable is the reduction (this module) and its correctness
properties on concrete instances (the ``verify_*`` helpers and the
test-suite built on them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.dep_translation import TypedDependency, t_dependency, t_egd, t_set
from repro.core.inverse import t_inverse
from repro.core.sigma0 import lemma1_holds, lemma4_holds
from repro.core.translation import t_relation
from repro.core.untyped import (
    UntypedDependency,
    check_theorem1_premises,
    require_untyped,
)
from repro.dependencies.base import is_counterexample
from repro.dependencies.egd import EqualityGeneratingDependency
from repro.model.relations import Relation
from repro.util.errors import TranslationError


@dataclass(frozen=True)
class TypedReduction:
    """The output of the Theorem 2 reduction."""

    premises: tuple[TypedDependency, ...]
    conclusion: EqualityGeneratingDependency
    source_premises: tuple[UntypedDependency, ...]
    source_conclusion: EqualityGeneratingDependency

    def premise_count(self) -> int:
        """Size of the translated premise set (including ``Sigma_0``)."""
        return len(self.premises)


def reduce_untyped_to_typed(
    premises: Sequence[UntypedDependency],
    conclusion: EqualityGeneratingDependency,
    enforce_theorem1_shape: bool = True,
) -> TypedReduction:
    """Perform the Theorem 2 reduction on an untyped implication instance.

    Parameters
    ----------
    premises:
        Untyped tds/egds (plus the fd ``A'B' -> C'``).  With
        ``enforce_theorem1_shape`` the structural conditions of Theorem 1 are
        validated, because the correctness proof (Lemma 4 in particular)
        relies on them.
    conclusion:
        The untyped egd whose implication is being decided.
    """
    if not isinstance(conclusion, EqualityGeneratingDependency):
        raise TranslationError(
            "the Theorem 2 reduction targets an untyped egd conclusion"
        )
    if enforce_theorem1_shape:
        check_theorem1_premises(list(premises))
    translated = t_set(list(premises))
    return TypedReduction(
        premises=tuple(translated),
        conclusion=t_egd(conclusion),
        source_premises=tuple(premises),
        source_conclusion=conclusion,
    )


def transport_counterexample(
    reduction: TypedReduction, untyped_counterexample: Relation
) -> Relation:
    """Lemma 2 + Lemmas 1/4 direction: translate an untyped counterexample.

    If ``I`` satisfies the untyped premises but not the conclusion, then
    ``T(I)`` satisfies the typed premises but not the typed conclusion.  The
    function performs the translation and *checks* the claim, raising if the
    lemmas were violated (they never are; the check is the point of the
    reproduction).
    """
    require_untyped(untyped_counterexample)
    if not is_counterexample(
        untyped_counterexample,
        list(reduction.source_premises),
        reduction.source_conclusion,
    ):
        raise TranslationError(
            "the given relation is not a counterexample to the untyped implication"
        )
    typed_image = t_relation(untyped_counterexample)
    if not lemma1_holds(untyped_counterexample):
        raise TranslationError("Lemma 1 failed on the given relation (impossible)")
    if not lemma4_holds(untyped_counterexample):
        raise TranslationError("Lemma 4 failed on the given relation (impossible)")
    if not is_counterexample(
        typed_image, list(reduction.premises), reduction.conclusion
    ):
        raise TranslationError(
            "T(I) is not a typed counterexample; Lemma 2 would be violated"
        )
    return typed_image


def transport_counterexample_back(
    reduction: TypedReduction, typed_counterexample: Relation
) -> Relation:
    """Lemma 3 direction: decode a typed counterexample into an untyped one.

    If ``I'`` satisfies the typed premises but not ``T(sigma)``, then
    ``T^-1(I')`` satisfies the untyped premises but not ``sigma``.  The
    decoded relation is checked before being returned.
    """
    if not is_counterexample(
        typed_counterexample, list(reduction.premises), reduction.conclusion
    ):
        raise TranslationError(
            "the given relation is not a counterexample to the typed implication"
        )
    decoded = t_inverse(typed_counterexample)
    if not is_counterexample(
        decoded, list(reduction.source_premises), reduction.source_conclusion
    ):
        raise TranslationError(
            "T^-1(I') is not an untyped counterexample; Lemma 3 would be violated"
        )
    return decoded


def verify_reduction_on_instance(
    premises: Sequence[UntypedDependency],
    conclusion: EqualityGeneratingDependency,
    relation: Relation,
) -> dict[str, bool]:
    """Evaluate both sides of the Lemma 2 equivalences on one concrete relation.

    Returns a dictionary with, for each premise/conclusion dependency, whether
    the untyped relation satisfies it and whether ``T`` of the relation
    satisfies its translation.  Lemma 2 says the paired answers always agree
    for A'B'-total tds and egds; the property tests assert exactly that.
    """
    require_untyped(relation)
    typed_image = t_relation(relation)
    report: dict[str, bool] = {}
    for index, dependency in enumerate([*premises, conclusion]):
        translated = t_dependency(dependency)
        untyped_answer = dependency.satisfied_by(relation)
        typed_answer = all(t.satisfied_by(typed_image) for t in translated)
        report[f"dependency_{index}_agrees"] = untyped_answer == typed_answer
    report["lemma1"] = lemma1_holds(relation)
    report["lemma4"] = lemma4_holds(relation)
    return report
